// Package noalloc rejects allocating constructs inside functions annotated
// `//calloc:noalloc` — the packed kernels, the PredictInto paths, the wire
// handlers, and the lane scheduler whose 0 allocs/op contract the serving
// benchmarks depend on.
//
// The analyzer is the syntactic half of a two-part gate. It catches the
// construct classes that have actually regressed the hot path in past PRs:
//
//   - calls into functions that are not themselves part of the noalloc set
//     (the PR 8 per-dispatch mat.FromSlice matrix header was exactly this);
//   - append through a locally-declared nil or uncapped slice (the PR 8
//     runq capacity bleed re-grew a pooled queue every batch);
//   - make/new, map and slice composite literals, &T{} allocations;
//   - escaping closures (a func literal that captures locals);
//   - interface boxing of non-pointer values at calls, assigns, returns;
//   - string concatenation and string<->[]byte conversions outside the
//     positions the compiler is guaranteed to elide;
//   - fmt.* calls (every fmt call boxes through ...any);
//   - go statements and defers inside loops.
//
// The other half, scripts/escapecheck.sh, asks the compiler itself: it runs
// `go build -gcflags=-m` and fails CI if escape analysis reports a heap
// allocation inside any annotated function. The analyzer gives precise,
// immediate diagnostics; the escape check is the ground truth backstop.
//
// A deliberately-cold line inside a noalloc function (one-time buffer
// growth, error paths) is suppressed with `//calloc:allow <reason>` on or
// directly above the line.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"calloc/internal/analysis"
	"calloc/internal/analysis/directive"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "reject allocating constructs in //calloc:noalloc functions",
	Run:  run,
}

// safeCallees are imported functions known not to allocate (or to allocate
// only on cold paths the runtime owns), permitted inside noalloc bodies
// without an //calloc:allow. Methods are listed by (*T).Name full name,
// package functions by pkgpath.Name.
var safeCallees = map[string]bool{
	// strconv append-style formatters write into the caller's buffer.
	"strconv.AppendInt":   true,
	"strconv.AppendUint":  true,
	"strconv.AppendFloat": true,
	"strconv.AppendQuote": true,
	"strconv.ParseInt":    true,
	"strconv.ParseUint":   true,
	"strconv.ParseFloat":  true,
	// math scalar helpers.
	"math.Sqrt": true, "math.Abs": true, "math.Exp": true, "math.Log": true,
	"math.Max": true, "math.Min": true, "math.Inf": true, "math.IsNaN": true,
	"math.IsInf": true, "math.Float64bits": true, "math.Float64frombits": true,
	"math.Float32bits": true, "math.Float32frombits": true, "math.Ceil": true,
	"math.Floor": true, "math.Log2": true, "math.Log1p": true, "math.Round": true,
	// time reads.
	"time.Now": true, "time.Since": true, "(time.Time).Sub": true,
	"(time.Time).UnixNano": true, "(time.Duration).Seconds": true,
	"(time.Duration).Nanoseconds": true, "(time.Duration).Milliseconds": true,
	// sync primitives.
	"(*sync.Mutex).Lock": true, "(*sync.Mutex).Unlock": true,
	"(*sync.RWMutex).Lock": true, "(*sync.RWMutex).Unlock": true,
	"(*sync.RWMutex).RLock": true, "(*sync.RWMutex).RUnlock": true,
	"(*sync.Cond).Signal": true, "(*sync.Cond).Broadcast": true,
	"(*sync.Cond).Wait": true, "(*sync.WaitGroup).Add": true,
	"(*sync.WaitGroup).Done": true,
	// math scalar transcendentals used by the activations.
	"math.Tanh": true,
	// error classification (no allocation; the errors were made elsewhere).
	"errors.Is": true,
	// timer reuse in the batching window.
	"(*time.Timer).Reset": true, "(*time.Timer).Stop": true,
	// reading into a caller-owned buffer; the callee's own behaviour is
	// outside this package's noalloc contract.
	"(io.Reader).Read": true,
	// sorting in place.
	"sort.Search": true,
	// Cross-package members of the audited set. The analyzer is
	// package-local (go vet units see only export data for imports), so
	// trust across packages goes through this list; each entry is
	// annotated //calloc:noalloc in its own package.
	"calloc/internal/wire.AppendString": true,
}

// safeCalleePrefixes whitelists whole families: every method of the typed
// atomics, and sync.Pool Get/Put themselves (pool traffic is the point).
var safeCalleePrefixes = []string{
	"(*sync/atomic.",
	"(*sync.Pool).",
	"sync/atomic.",
}

func run(pass *analysis.Pass) (any, error) {
	// The intra-package noalloc set: calls between annotated functions are
	// fine — the contract is transitive by construction.
	noallocFns := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := directive.FuncDirective(fd, directive.NoAlloc); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					noallocFns[obj] = true
				}
			}
		}
	}
	for _, file := range pass.Files {
		ix := directive.Index(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := directive.FuncDirective(fd, directive.NoAlloc); !ok {
				continue
			}
			w := &walker{pass: pass, ix: ix, noallocFns: noallocFns, fn: fd,
				elided: elisionSafeConversions(fd.Body)}
			w.walk(fd.Body, 0)
		}
	}
	return nil, nil
}

// Ranges returns, for escapecheck.sh, the file/line ranges of every
// //calloc:noalloc function body in the pass plus the lines blessed by
// //calloc:allow. Used by calloc-vet -ranges; not an analyzer.
func Ranges(fset *token.FileSet, files []*ast.File, report func(kind, file string, start, end int)) {
	for _, f := range files {
		ix := directive.Index(fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := directive.FuncDirective(fd, directive.NoAlloc); !ok {
				continue
			}
			start := fset.Position(fd.Body.Pos())
			end := fset.Position(fd.Body.End())
			report("range", start.Filename, start.Line, end.Line)
		}
		for _, line := range ix.Lines(directive.Allow) {
			report("allow", fset.Position(f.Pos()).Filename, line, line)
		}
	}
}

type walker struct {
	pass       *analysis.Pass
	ix         *directive.FileIndex
	noallocFns map[types.Object]bool
	fn         *ast.FuncDecl
	// elided holds positions of string conversions in positions the
	// compiler is guaranteed to elide (map index, ==/!= operand, switch
	// tag), which therefore do not allocate.
	elided map[token.Pos]bool
}

// elisionSafeConversions records the positions of conversion expressions in
// the positions gc elides the copy: m[string(b)], string(b) == s (either
// operand), and switch string(b) tags.
func elisionSafeConversions(body *ast.BlockStmt) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	mark := func(x ast.Expr) {
		if call, ok := ast.Unparen(x).(*ast.CallExpr); ok {
			out[call.Pos()] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IndexExpr:
			mark(e.Index)
		case *ast.BinaryExpr:
			if e.Op == token.EQL || e.Op == token.NEQ {
				mark(e.X)
				mark(e.Y)
			}
		case *ast.SwitchStmt:
			if e.Tag != nil {
				mark(e.Tag)
			}
		}
		return true
	})
	return out
}

// allowed reports an //calloc:allow governing pos.
func (w *walker) allowed(pos token.Pos) bool {
	_, ok := w.ix.At(directive.Allow, pos)
	return ok
}

func (w *walker) reportf(pos token.Pos, format string, args ...any) {
	if w.allowed(pos) {
		return
	}
	w.pass.Reportf(pos, format, args...)
}

// walk inspects node; loopDepth tracks enclosing for/range statements for
// the defer-in-loop rule.
func (w *walker) walk(node ast.Node, loopDepth int) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			w.walkLoop(x.Init, x.Cond, x.Post, x.Body, loopDepth)
			return false
		case *ast.RangeStmt:
			if x.Key != nil {
				w.walk(x.Key, loopDepth)
			}
			if x.Value != nil {
				w.walk(x.Value, loopDepth)
			}
			w.walk(x.X, loopDepth)
			w.walk(x.Body, loopDepth+1)
			return false
		case *ast.GoStmt:
			w.reportf(x.Pos(), "go statement in noalloc function %s: spawning a goroutine allocates its stack", w.fn.Name.Name)
			return true
		case *ast.DeferStmt:
			if loopDepth > 0 {
				w.reportf(x.Pos(), "defer inside a loop in noalloc function %s allocates a defer record per iteration", w.fn.Name.Name)
			}
			return true
		case *ast.FuncLit:
			if captures(w.pass.TypesInfo, x) {
				w.reportf(x.Pos(), "closure in noalloc function %s captures local variables and escapes to the heap", w.fn.Name.Name)
			}
			// Do not descend: the literal runs under its own contract.
			return false
		case *ast.CompositeLit:
			w.checkCompositeLit(x)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					w.reportf(x.Pos(), "&T{} literal in noalloc function %s allocates", w.fn.Name.Name)
				}
			}
			return true
		case *ast.BinaryExpr:
			w.checkConcat(x)
			return true
		case *ast.CallExpr:
			w.checkCall(x)
			return true
		case *ast.AssignStmt:
			w.checkAppendTargets(x)
			return true
		}
		return true
	})
}

func (w *walker) walkLoop(init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt, loopDepth int) {
	if init != nil {
		w.walk(init, loopDepth)
	}
	if cond != nil {
		w.walk(cond, loopDepth)
	}
	if post != nil {
		w.walk(post, loopDepth)
	}
	w.walk(body, loopDepth+1)
}

// captures reports whether the literal references any object declared
// outside its own body (other than package-level objects) — the condition
// under which the closure needs a heap-allocated environment.
func captures(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
			return true
		}
		// Declared inside the literal itself?
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		found = true
		return false
	})
	return found
}

func (w *walker) checkCompositeLit(x *ast.CompositeLit) {
	tv, ok := w.pass.TypesInfo.Types[x]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		w.reportf(x.Pos(), "map literal in noalloc function %s allocates", w.fn.Name.Name)
	case *types.Slice:
		w.reportf(x.Pos(), "slice literal in noalloc function %s allocates backing storage", w.fn.Name.Name)
	}
	// Plain struct value literals (T{} assigned by value, *o = OptInt{})
	// do not allocate and are permitted; &T{} is caught at the UnaryExpr.
}

func (w *walker) checkConcat(x *ast.BinaryExpr) {
	if x.Op != token.ADD {
		return
	}
	tv, ok := w.pass.TypesInfo.Types[x]
	if !ok {
		return
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return
	}
	if tv.Value != nil {
		return // constant-folded
	}
	w.reportf(x.Pos(), "string concatenation in noalloc function %s allocates; append into a reused []byte instead", w.fn.Name.Name)
}

// checkAppendTargets flags `v = append(v, ...)` when v is a local declared
// with no capacity (nil or uncapped literal) in this function — growth is
// then guaranteed on the hot path. Appends into parameters, struct fields,
// named results, and pooled buffers are the intended idiom and pass.
func (w *walker) checkAppendTargets(as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) {
			continue
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			continue
		}
		if b, ok := w.pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if len(call.Args) == 0 {
			continue
		}
		target, ok := call.Args[0].(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.pass.TypesInfo.Uses[target]
		if obj == nil {
			continue
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			continue
		}
		if w.declaredUncapped(v) {
			w.reportf(call.Pos(),
				"append to %s in noalloc function %s: the slice is declared in this function with no capacity, so growth allocates on the hot path — pre-size it or append into a pooled/reused buffer",
				target.Name, w.fn.Name.Name)
		}
	}
}

// declaredUncapped reports whether v is declared inside the current function
// as nil or via a literal/make with no meaningful capacity.
func (w *walker) declaredUncapped(v *types.Var) bool {
	if v.Pos() < w.fn.Body.Pos() || v.Pos() >= w.fn.Body.End() {
		return false // parameter, result, or outer declaration
	}
	uncapped := false
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.AssignStmt:
			if d.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || w.pass.TypesInfo.Defs[id] != v || i >= len(d.Rhs) {
					continue
				}
				uncapped = rhsUncapped(w.pass.TypesInfo, d.Rhs[i])
			}
		case *ast.DeclStmt:
			gd, ok := d.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if w.pass.TypesInfo.Defs[name] != v {
						continue
					}
					if len(vs.Values) == 0 {
						uncapped = true // var s []T — nil slice
					} else if i < len(vs.Values) {
						uncapped = rhsUncapped(w.pass.TypesInfo, vs.Values[i])
					}
				}
			}
		}
		return true
	})
	return uncapped
}

// rhsUncapped reports whether the initialiser produces a slice with no
// useful capacity: nil, an empty literal, or make with constant-zero cap.
func rhsUncapped(info *types.Info, x ast.Expr) bool {
	switch e := x.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		fn, ok := e.Fun.(*ast.Ident)
		if !ok || fn.Name != "make" {
			return false
		}
		capArg := ""
		if len(e.Args) == 3 {
			if lit, ok := e.Args[2].(*ast.BasicLit); ok {
				capArg = lit.Value
			}
		} else if len(e.Args) == 2 {
			if lit, ok := e.Args[1].(*ast.BasicLit); ok {
				capArg = lit.Value
			}
		}
		return capArg == "0"
	}
	return false
}

func (w *walker) checkCall(call *ast.CallExpr) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.reportf(call.Pos(), "make in noalloc function %s allocates; acquire the buffer outside the hot path", w.fn.Name.Name)
			case "new":
				w.reportf(call.Pos(), "new in noalloc function %s allocates", w.fn.Name.Name)
			}
			return
		}
	}
	// Conversions: string(b) / []byte(s) copy unless in an elision-safe
	// position, which the walk handles by not reaching here (see below).
	if w.checkConversion(call) {
		return
	}
	callee := calleeOf(w.pass.TypesInfo, call)
	if callee == nil {
		// Calling a function value (field, param): allocation behaviour is
		// unknowable here; escapecheck.sh still covers the body itself.
		return
	}
	if callee.Pkg() == nil {
		return // builtin-ish (error.Error on universe scope etc.)
	}
	if callee.Pkg() == w.pass.Pkg {
		if w.noallocFns[callee] {
			// The callee keeps its own body clean, but boxing happens at
			// this call site.
			w.checkBoxing(call)
			return
		}
		// Method on a package type, or plain function, without the
		// annotation: direct it to be annotated or allowed.
		w.reportf(call.Pos(),
			"call to %s in noalloc function %s: the callee is not annotated //calloc:noalloc, so its allocation behaviour is unchecked",
			callee.Name(), w.fn.Name.Name)
		w.checkBoxing(call)
		return
	}
	full := calleeFullName(callee)
	if full == "fmt.Sprintf" || full == "fmt.Errorf" || strings.HasPrefix(full, "fmt.") {
		w.reportf(call.Pos(), "fmt call in noalloc function %s allocates (every argument boxes through ...any)", w.fn.Name.Name)
		return
	}
	if safeCallees[full] {
		w.checkBoxing(call)
		return
	}
	for _, p := range safeCalleePrefixes {
		if strings.HasPrefix(full, p) {
			return
		}
	}
	w.reportf(call.Pos(),
		"call to %s in noalloc function %s: the callee is outside the audited no-allocation set (add //calloc:allow <reason> if it is provably allocation-free)",
		full, w.fn.Name.Name)
	w.checkBoxing(call)
}

// checkConversion flags string(x)/[]byte(x) conversions. Returns true if
// call was a conversion (flagged or not).
func (w *walker) checkConversion(call *ast.CallExpr) bool {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	if w.elided[call.Pos()] {
		return true
	}
	dst, _ := tv.Type.Underlying().(*types.Basic)
	argTV, ok := w.pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return true
	}
	// string([]byte) and []byte(string) copy.
	if dst != nil && dst.Info()&types.IsString != 0 {
		if _, fromSlice := argTV.Type.Underlying().(*types.Slice); fromSlice {
			w.reportf(call.Pos(),
				"string(b) conversion in noalloc function %s copies b to the heap unless the compiler can elide it; add //calloc:allow <reason> only if the elision is verified",
				w.fn.Name.Name)
		}
		return true
	}
	if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
		if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
			if ab, ok := argTV.Type.Underlying().(*types.Basic); ok && ab.Info()&types.IsString != 0 {
				w.reportf(call.Pos(), "[]byte(s) conversion in noalloc function %s copies s to the heap", w.fn.Name.Name)
			}
		}
	}
	return true
}

// checkBoxing flags arguments whose assignment to an interface parameter
// boxes a non-pointer concrete value.
func (w *walker) checkBoxing(call *ast.CallExpr) {
	sig := signatureOf(w.pass.TypesInfo, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := w.pass.TypesInfo.Types[arg]
		if !ok || atv.Type == nil {
			continue
		}
		at := atv.Type
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if isPointerShaped(at) {
			continue
		}
		if atv.Value != nil {
			continue // constants may be boxed via static data
		}
		w.reportf(arg.Pos(),
			"argument boxes %s into an interface in noalloc function %s: non-pointer values escape to the heap when boxed",
			at.String(), w.fn.Name.Name)
	}
}

// isPointerShaped reports types whose interface representation needs no
// allocation: pointers, channels, maps, funcs, unsafe pointers.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// calleeFullName renders obj as pkgpath.Name or (recv).Name matching the
// safeCallees table.
func calleeFullName(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			return "(*" + typePath(p.Elem()) + ")." + f.Name()
		}
		return "(" + typePath(rt) + ")." + f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Path() + "." + f.Name()
	}
	return f.Name()
}

func typePath(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return t.String()
	}
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}
