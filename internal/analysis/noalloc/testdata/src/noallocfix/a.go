// Package noallocfix is the noalloc fixture. The two headline cases are
// modeled on the real allocation regressions PR 8 shipped and then had to
// chase with profiles: the per-dispatch matrix-header construction
// (dispatchHeader) and the run-queue capacity bleed (runqBleed).
package noallocfix

import (
	"fmt"
	"strconv"
)

type matrix struct {
	rows, cols int
	data       []float64
}

// fromSlice wraps data in a fresh header — allocation-free it is not.
func fromSlice(r, c int, data []float64) *matrix {
	return &matrix{rows: r, cols: c, data: data}
}

// dispatchHeader is the PR 8 matrix-header bug: the dispatch loop called a
// convenience constructor per batch, allocating a header on every dispatch.
//
//calloc:noalloc
func dispatchHeader(rows int, data []float64) float64 {
	m := fromSlice(rows, len(data)/rows, data) // want `not annotated //calloc:noalloc`
	return m.data[0]
}

// dispatchHeaderFixed is the shipped fix: a worker-owned header rewritten
// in place.
//
//calloc:noalloc
func dispatchHeaderFixed(m *matrix, rows int, data []float64) float64 {
	m.rows = rows
	m.cols = len(data) / rows
	m.data = data
	return m.data[0]
}

// runqBleed is the PR 8 run-queue bug shape: the queue was redeclared with
// no capacity, so the append re-grew it every batch.
//
//calloc:noalloc
func runqBleed(items []int) int {
	var q []int
	for _, it := range items {
		q = append(q, it) // want `declared in this function with no capacity`
	}
	return len(q)
}

// runqReuse is the fixed shape: append into a caller-owned queue that keeps
// its capacity across batches.
//
//calloc:noalloc
func runqReuse(q []int, items []int) []int {
	for _, it := range items {
		q = append(q, it)
	}
	return q
}

//calloc:noalloc
func makesSlice(n int) []float64 {
	return make([]float64, n) // want `make in noalloc function`
}

//calloc:noalloc
func newsValue() *matrix {
	return new(matrix) // want `new in noalloc function`
}

//calloc:noalloc
func ptrLit() *matrix {
	return &matrix{} // want `literal in noalloc function ptrLit allocates`
}

//calloc:noalloc
func sliceLit() []int {
	return []int{1, 2} // want `slice literal`
}

//calloc:noalloc
func mapLit() int {
	m := map[string]int{"a": 1} // want `map literal`
	return m["a"]
}

// valueLit writes a zero struct by value — no allocation, no finding.
//
//calloc:noalloc
func valueLit(dst *matrix) {
	*dst = matrix{}
}

//calloc:noalloc
func usesFmt(x int) string {
	return fmt.Sprintf("%d", x) // want `fmt call`
}

//calloc:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation`
}

//calloc:noalloc
func convCopy(s string) []byte {
	return []byte(s) // want `copies s to the heap`
}

// internLookup converts in map-index position, which the compiler elides.
//
//calloc:noalloc
func internLookup(m map[string]int, b []byte) int {
	return m[string(b)]
}

// compareNoCopy converts in comparison position, also elided.
//
//calloc:noalloc
func compareNoCopy(b []byte, s string) bool {
	return string(b) == s
}

//calloc:noalloc
func closureCapture() float64 {
	sum := 0.0
	f := func() { sum++ } // want `captures local variables`
	f()
	return sum
}

// closureClean captures nothing: a static func value, no environment.
//
//calloc:noalloc
func closureClean() int {
	f := func(a int) int { return a + 1 }
	return f(2)
}

//calloc:noalloc
func doNothing() {}

//calloc:noalloc
func spawns() {
	go doNothing() // want `go statement`
}

//calloc:noalloc
func deferLoop(n int) {
	for i := 0; i < n; i++ {
		defer doNothing() // want `defer inside a loop`
	}
}

//calloc:noalloc
func sinkAny(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

//calloc:noalloc
func boxesInt(x int) int {
	return sinkAny(x) // want `boxes int into an interface`
}

//calloc:noalloc
func passesPointer(m *matrix) int {
	return sinkAny(m)
}

// appendInt builds on the strconv append family, the sanctioned formatter.
//
//calloc:noalloc
func appendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// coldGrowth is blessed line by line: the allow directive requires a reason
// and keeps the rest of the function strict.
//
//calloc:noalloc
func coldGrowth(n int) []byte {
	//calloc:allow one-time growth on the cold path
	return make([]byte, n)
}
