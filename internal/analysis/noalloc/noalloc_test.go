package noalloc_test

import (
	"testing"

	"calloc/internal/analysis/analysistest"
	"calloc/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "noallocfix")
}
