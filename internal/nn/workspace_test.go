package nn

import (
	"math"
	"math/rand"
	"testing"

	"calloc/internal/mat"
)

func closeEnough(t *testing.T, got, want *mat.Matrix, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range want.Data {
		scale := math.Abs(v)
		if scale < 1 {
			scale = 1
		}
		if math.Abs(got.Data[i]-v) > 1e-12*scale {
			t.Fatalf("%s: element %d = %g, want %g", label, i, got.Data[i], v)
		}
	}
}

// inferIntoStacks covers fused Dense+activation pairs, a bare Dense, a
// leading standalone activation, and the identity eval-time layers.
func inferIntoStacks(rng *rand.Rand) map[string]*Network {
	return map[string]*Network{
		"dense_relu":    NewNetwork(NewDense("a", 9, 7, rng), &ReLU{}),
		"dense_tanh":    NewNetwork(NewDenseXavier("b", 9, 7, rng), &Tanh{}),
		"dense_sigmoid": NewNetwork(NewDenseXavier("c", 9, 7, rng), &Sigmoid{}),
		"dense_only":    NewNetwork(NewDense("d", 9, 7, rng)),
		"leading_act":   NewNetwork(&Tanh{}, NewDense("e", 9, 7, rng), &ReLU{}),
		"deep": NewNetwork(
			NewDense("f1", 9, 16, rng), &ReLU{},
			NewDropout(0.5, rng), NewGaussianNoise(0.3, rng),
			NewDense("f2", 16, 7, rng), &Sigmoid{},
		),
	}
}

// TestInferIntoMatchesInfer: the workspace path must agree with the
// allocation-per-call Infer path on every stack shape, across repeated calls
// (buffer reuse) and varying batch sizes (buffer regrowth).
func TestInferIntoMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for name, net := range inferIntoStacks(rng) {
		t.Run(name, func(t *testing.T) {
			ws := NewWorkspace()
			for _, rows := range []int{1, 4, 1, 17, 3} {
				x := randMat(rng, rows, 9)
				want := net.Infer(x)
				ws.Reset()
				closeEnough(t, net.InferInto(ws, x), want, name)
			}
		})
	}
}

// TestInferIntoDoesNotMutateInput: a leading activation layer must write to
// a workspace buffer, never in place over the caller's matrix.
func TestInferIntoDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(&ReLU{})
	x := randMat(rng, 3, 5)
	orig := x.Clone()
	net.InferInto(NewWorkspace(), x)
	for i, v := range orig.Data {
		if x.Data[i] != v {
			t.Fatalf("InferInto mutated input at %d: %g -> %g", i, v, x.Data[i])
		}
	}
}

// TestInferIntoZeroAllocSteadyState: after the first pass warms the buffers
// and packed views, the workspace path must not allocate.
func TestInferIntoZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(
		NewDense("z1", 12, 24, rng), &ReLU{},
		NewDense("z2", 24, 6, rng), &Sigmoid{},
	)
	ws := NewWorkspace()
	x := randMat(rng, 2, 12)
	if allocs := testing.AllocsPerRun(50, func() {
		ws.Reset()
		net.InferInto(ws, x)
	}); allocs != 0 {
		t.Fatalf("steady-state InferInto allocates %.0f objects/op, want 0", allocs)
	}
}

// TestPackedViewInvalidation: weight updates through every supported
// mutation path must be visible to the next packed inference.
func TestPackedViewInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randMat(rng, 3, 5)

	check := func(name string, net *Network, mutate func(*Network)) {
		t.Helper()
		ws := NewWorkspace()
		net.InferInto(ws, x) // cache the packed views
		mutate(net)
		want := net.Infer(x)
		ws.Reset()
		closeEnough(t, net.InferInto(ws, x), want, name)
	}

	check("optimizer", NewNetwork(NewDense("o", 5, 4, rng), &ReLU{}), func(net *Network) {
		for _, p := range net.Params() {
			for i := range p.G.Data {
				p.G.Data[i] = rng.NormFloat64()
			}
		}
		NewSGD(0.1, 0).Step(net.Params())
	})

	check("restore", NewNetwork(NewDense("r", 5, 4, rng), &ReLU{}), func(net *Network) {
		snap := net.Snapshot()
		for i := range snap {
			for j := range snap[i] {
				snap[i][j] = rng.NormFloat64()
			}
		}
		net.Restore(snap)
	})

	check("unmarshal", NewNetwork(NewDense("u", 5, 4, rng), &ReLU{}), func(net *Network) {
		donor := NewNetwork(NewDense("u", 5, 4, rand.New(rand.NewSource(99))), &ReLU{})
		blob, err := donor.MarshalWeights()
		if err != nil {
			t.Fatal(err)
		}
		if err := net.UnmarshalWeights(blob); err != nil {
			t.Fatal(err)
		}
	})
}

// TestInferProjectedIntoMatches: the workspace attention path must agree
// with the pool-based InferProjected and with Forward.
func TestInferProjectedIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ca := NewCrossAttention("att", 6, 4, rng)
	q := randMat(rng, 5, 6)
	k := randMat(rng, 11, 6)
	v := randMat(rng, 11, 3)

	want := ca.Forward(q, k, v)
	kp := ca.ProjectKeys(k)
	kpT := kp.Transpose()
	ws := NewWorkspace()
	for i := 0; i < 3; i++ { // repeated calls exercise buffer reuse
		ws.Reset()
		closeEnough(t, ca.InferProjectedInto(ws, q, kp, v), want, "InferProjectedInto")
		ws.Reset()
		closeEnough(t, ca.InferProjectedTInto(ws, q, kpT, v), want, "InferProjectedTInto")
	}

	if allocs := testing.AllocsPerRun(50, func() {
		ws.Reset()
		ca.InferProjectedInto(ws, q, kp, v)
	}); allocs != 0 {
		t.Fatalf("steady-state InferProjectedInto allocates %.0f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		ws.Reset()
		ca.InferProjectedTInto(ws, q, kpT, v)
	}); allocs != 0 {
		t.Fatalf("steady-state InferProjectedTInto allocates %.0f objects/op, want 0", allocs)
	}
}
