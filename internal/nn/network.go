package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"calloc/internal/mat"
)

// Network is an ordered stack of layers trained end to end.
type Network struct {
	Layers []Layer
}

// NewNetwork builds a network from the given layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs every layer in order. train selects train-time behaviour for
// stochastic layers (dropout, noise).
func (n *Network) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Inferencer is implemented by layers whose eval-mode forward pass writes no
// layer state, making it safe to run concurrently with other Infer calls on
// the same layer. Backward must never follow an Infer call: inference leaves
// the training caches untouched.
type Inferencer interface {
	Infer(x *mat.Matrix) *mat.Matrix
}

// Infer runs an eval-mode forward pass without disturbing any training
// caches. Layers that do not implement Inferencer fall back to Forward(x,
// false); see ConcurrentSafe for whether the whole stack is cache-free.
func (n *Network) Infer(x *mat.Matrix) *mat.Matrix {
	for _, l := range n.Layers {
		if inf, ok := l.(Inferencer); ok {
			x = inf.Infer(x)
		} else {
			x = l.Forward(x, false)
		}
	}
	return x
}

// ConcurrentSafe reports whether every layer implements Inferencer, i.e.
// whether Infer may be called from multiple goroutines simultaneously.
func (n *Network) ConcurrentSafe() bool {
	for _, l := range n.Layers {
		if _, ok := l.(Inferencer); !ok {
			return false
		}
	}
	return true
}

// Backward propagates gradOut through the stack in reverse, accumulating
// parameter gradients, and returns the gradient with respect to the network
// input (used by the white-box attacks).
func (n *Network) Backward(gradOut *mat.Matrix) *mat.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		gradOut = n.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params returns every trainable parameter in the stack.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int { return CountParams(n.Params()) }

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// Predict returns the argmax class for every row of x.
func (n *Network) Predict(x *mat.Matrix) []int {
	logits := n.Forward(x, false)
	out := make([]int, logits.Rows)
	for i := range out {
		out[i] = mat.ArgMax(logits.Row(i))
	}
	return out
}

// InputGradient computes ∂loss/∂x for the softmax cross-entropy loss at the
// given labels, without disturbing accumulated parameter training state
// beyond adding to the gradients (callers should ZeroGrads afterwards if they
// are mid-training). The network is run in eval mode, matching how an
// adversary observes the deployed model.
func (n *Network) InputGradient(x *mat.Matrix, labels []int) *mat.Matrix {
	logits := n.Forward(x, false)
	_, grad := SoftmaxCrossEntropy(logits, labels)
	g := n.Backward(grad)
	n.ZeroGrads()
	return g
}

// Snapshot returns a deep copy of all parameter values, used by the adaptive
// curriculum to revert to the best-performing weights.
func (n *Network) Snapshot() [][]float64 {
	ps := n.Params()
	out := make([][]float64, len(ps))
	for i, p := range ps {
		out[i] = append([]float64(nil), p.W.Data...)
	}
	return out
}

// Restore copies a snapshot back into the parameters.
func (n *Network) Restore(snap [][]float64) {
	ps := n.Params()
	if len(snap) != len(ps) {
		panic(fmt.Sprintf("nn: Restore snapshot has %d tensors, network has %d", len(snap), len(ps)))
	}
	for i, p := range ps {
		if len(snap[i]) != len(p.W.Data) {
			panic(fmt.Sprintf("nn: Restore tensor %d size %d != %d", i, len(snap[i]), len(p.W.Data)))
		}
		copy(p.W.Data, snap[i])
		p.NoteUpdate()
	}
}

// savedParam is the gob wire form of one parameter.
type savedParam struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// MarshalWeights serialises all parameter values (not gradients) with gob.
func (n *Network) MarshalWeights() ([]byte, error) {
	var sp []savedParam
	for _, p := range n.Params() {
		sp = append(sp, savedParam{p.Name, p.W.Rows, p.W.Cols, p.W.Data})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sp); err != nil {
		return nil, fmt.Errorf("nn: encode weights: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalWeights loads weights previously produced by MarshalWeights into a
// network with an identical architecture.
func (n *Network) UnmarshalWeights(data []byte) error {
	var sp []savedParam
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&sp); err != nil {
		return fmt.Errorf("nn: decode weights: %w", err)
	}
	ps := n.Params()
	if len(sp) != len(ps) {
		return fmt.Errorf("nn: weight count mismatch: file has %d tensors, network has %d", len(sp), len(ps))
	}
	for i, p := range ps {
		s := sp[i]
		if s.Rows != p.W.Rows || s.Cols != p.W.Cols {
			return fmt.Errorf("nn: tensor %q shape mismatch: file %dx%d, network %dx%d",
				s.Name, s.Rows, s.Cols, p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, s.Data)
		p.NoteUpdate()
	}
	return nil
}
