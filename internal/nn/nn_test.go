package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"calloc/internal/mat"
)

func randMat(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestDenseShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 3, 5, rng)
	y := d.Forward(randMat(rng, 7, 3), false)
	if y.Rows != 7 || y.Cols != 5 {
		t.Fatalf("Dense output %dx%d, want 7x5", y.Rows, y.Cols)
	}
	if got := CountParams(d.Params()); got != 3*5+5 {
		t.Fatalf("Dense params = %d, want 20", got)
	}
}

func TestReLUClampsNegative(t *testing.T) {
	r := &ReLU{}
	y := r.Forward(mat.FromRows([][]float64{{-1, 0, 2}}), false)
	want := []float64{0, 0, 2}
	for i, v := range y.Data {
		if v != want[i] {
			t.Fatalf("ReLU = %v, want %v", y.Data, want)
		}
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDropout(0.5, rng)
	x := randMat(rng, 4, 4)
	y := d.Forward(x, false)
	if y != x {
		t.Fatal("Dropout in eval mode should return input unchanged")
	}
}

func TestDropoutTrainDropsAndScales(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDropout(0.5, rng)
	x := mat.New(1, 10000)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := d.Forward(x, true)
	var zeros int
	var sum float64
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
		sum += v
	}
	frac := float64(zeros) / float64(len(y.Data))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("drop fraction %.3f, want ≈0.5", frac)
	}
	// Inverted dropout keeps the expectation: mean should stay ≈1.
	mean := sum / float64(len(y.Data))
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("post-dropout mean %.3f, want ≈1", mean)
	}
}

func TestDropoutBackwardUsesSameMask(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout(0.5, rng)
	x := mat.New(1, 100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := d.Forward(x, true)
	g := mat.New(1, 100)
	for i := range g.Data {
		g.Data[i] = 1
	}
	gy := d.Backward(g)
	for i := range y.Data {
		if (y.Data[i] == 0) != (gy.Data[i] == 0) {
			t.Fatal("Backward mask differs from Forward mask")
		}
	}
}

func TestGaussianNoiseEvalIsIdentityTrainPerturbs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGaussianNoise(0.32, rng)
	x := randMat(rng, 3, 3)
	if y := g.Forward(x, false); y != x {
		t.Fatal("GaussianNoise eval should be identity")
	}
	y := g.Forward(x, true)
	var diff float64
	for i := range y.Data {
		diff += math.Abs(y.Data[i] - x.Data[i])
	}
	if diff == 0 {
		t.Fatal("GaussianNoise train mode did not perturb input")
	}
}

func TestGaussianNoiseStdDev(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := NewGaussianNoise(0.32, rng)
	x := mat.New(1, 20000)
	y := g.Forward(x, true)
	var sum, sq float64
	for _, v := range y.Data {
		sum += v
		sq += v * v
	}
	n := float64(len(y.Data))
	std := math.Sqrt(sq/n - (sum/n)*(sum/n))
	if math.Abs(std-0.32) > 0.02 {
		t.Fatalf("noise std %.4f, want ≈0.32", std)
	}
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes → loss = ln 4.
	logits := mat.New(1, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %g, want ln4", loss)
	}
	// Gradient sums to zero (softmax minus one-hot).
	var s float64
	for _, v := range grad.Data {
		s += v
	}
	if math.Abs(s) > 1e-12 {
		t.Fatalf("CE gradient sums to %g, want 0", s)
	}
}

func TestSoftmaxCrossEntropyRejectsBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range label")
		}
	}()
	SoftmaxCrossEntropy(mat.New(1, 3), []int{5})
}

func TestAccuracy(t *testing.T) {
	logits := mat.FromRows([][]float64{{2, 1}, {0, 3}, {5, 4}})
	if got := Accuracy(logits, []int{0, 1, 1}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %g, want 2/3", got)
	}
}

func TestOneHot(t *testing.T) {
	oh := OneHot([]int{1, 0}, 3)
	want := mat.FromRows([][]float64{{0, 1, 0}, {1, 0, 0}})
	for i := range oh.Data {
		if oh.Data[i] != want.Data[i] {
			t.Fatalf("OneHot = %v", oh.Data)
		}
	}
}

// TestTrainingConvergesOnBlobs trains a small MLP on three linearly separable
// Gaussian blobs and requires near-perfect training accuracy — the end-to-end
// sanity check that forward, backward, and Adam interact correctly.
func TestTrainingConvergesOnBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, classes = 150, 3
	centers := [][]float64{{0, 0}, {5, 5}, {0, 5}}
	x := mat.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		x.Set(i, 0, centers[c][0]+rng.NormFloat64()*0.5)
		x.Set(i, 1, centers[c][1]+rng.NormFloat64()*0.5)
	}
	net := NewNetwork(
		NewDense("l1", 2, 16, rng),
		&ReLU{},
		NewDense("l2", 16, classes, rng),
	)
	opt := NewAdam(0.01)
	for epoch := 0; epoch < 200; epoch++ {
		logits := net.Forward(x, true)
		_, g := SoftmaxCrossEntropy(logits, labels)
		net.Backward(g)
		opt.Step(net.Params())
	}
	acc := Accuracy(net.Forward(x, false), labels)
	if acc < 0.98 {
		t.Fatalf("training accuracy %.3f, want ≥0.98", acc)
	}
}

// TestSGDMomentumConverges fits a 1-D least squares problem with SGD.
func TestSGDMomentumConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(NewDense("l", 1, 1, rng))
	x := mat.FromRows([][]float64{{1}, {2}, {3}, {4}})
	target := mat.FromRows([][]float64{{3}, {5}, {7}, {9}}) // y = 2x+1
	opt := NewSGD(0.02, 0.9)
	for i := 0; i < 500; i++ {
		pred := net.Forward(x, true)
		_, g := MSE(pred, target)
		net.Backward(g)
		opt.Step(net.Params())
	}
	loss, _ := MSE(net.Forward(x, false), target)
	if loss > 1e-3 {
		t.Fatalf("SGD final loss %.6f, want <1e-3", loss)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork(NewDense("l1", 3, 4, rng), &ReLU{}, NewDense("l2", 4, 2, rng))
	snap := net.Snapshot()
	orig := net.Params()[0].W.Data[0]
	net.Params()[0].W.Data[0] = 999
	net.Restore(snap)
	if got := net.Params()[0].W.Data[0]; got != orig {
		t.Fatalf("Restore gave %g, want %g", got, orig)
	}
}

func TestWeightsMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewNetwork(NewDense("l1", 4, 8, rng), &ReLU{}, NewDense("l2", 8, 3, rng))
	data, err := net.MarshalWeights()
	if err != nil {
		t.Fatal(err)
	}
	net2 := NewNetwork(NewDense("l1", 4, 8, rng), &ReLU{}, NewDense("l2", 8, 3, rng))
	if err := net2.UnmarshalWeights(data); err != nil {
		t.Fatal(err)
	}
	x := randMat(rng, 5, 4)
	y1 := net.Forward(x, false)
	y2 := net2.Forward(x, false)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("loaded network gives different outputs")
		}
	}
}

func TestUnmarshalWeightsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewNetwork(NewDense("l1", 4, 8, rng))
	data, err := net.MarshalWeights()
	if err != nil {
		t.Fatal(err)
	}
	other := NewNetwork(NewDense("l1", 4, 9, rng))
	if err := other.UnmarshalWeights(data); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestClipGradients(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.G.Data[0], p.G.Data[1] = 3, 4 // norm 5
	pre := ClipGradients([]*Param{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %g, want 5", pre)
	}
	var norm float64
	for _, g := range p.G.Data {
		norm += g * g
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
		t.Fatalf("post-clip norm %g, want 1", math.Sqrt(norm))
	}
}

// Property: softmax CE loss is non-negative and its gradient rows sum to 0.
func TestCrossEntropyProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, c := 1+r.Intn(6), 2+r.Intn(6)
		logits := randMat(r, n, c)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(c)
		}
		loss, grad := SoftmaxCrossEntropy(logits, labels)
		if loss < 0 {
			return false
		}
		for i := 0; i < n; i++ {
			var s float64
			for _, v := range grad.Row(i) {
				s += v
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Adam decreases a simple quadratic loss from any start.
func TestAdamDescendsQuadratic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewParam("w", 1, 1)
		p.W.Data[0] = r.NormFloat64() * 5
		opt := NewAdam(0.1)
		start := p.W.Data[0] * p.W.Data[0]
		for i := 0; i < 100; i++ {
			p.G.Data[0] = 2 * p.W.Data[0]
			opt.Step([]*Param{p})
		}
		return p.W.Data[0]*p.W.Data[0] <= start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiHeadSelfAttentionShape(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	mhsa := NewMultiHeadSelfAttention("m", 4, 8, 2, rng)
	x := randMat(rng, 3, 32)
	y := mhsa.Forward(x, false)
	if y.Rows != 3 || y.Cols != 32 {
		t.Fatalf("MHSA output %dx%d, want 3x32", y.Rows, y.Cols)
	}
}

func TestCrossAttentionWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ca := NewCrossAttention("a", 4, 3, rng)
	q := randMat(rng, 2, 4)
	k := randMat(rng, 5, 4)
	v := OneHot([]int{0, 1, 2, 0, 1}, 3)
	out := ca.Forward(q, k, v)
	// With one-hot values, each output row is a convex combination → sums to 1.
	for i := 0; i < out.Rows; i++ {
		var s float64
		for _, x := range out.Row(i) {
			s += x
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("attention output row sums to %g, want 1", s)
		}
	}
	w := ca.AttentionWeights()
	if w.Rows != 2 || w.Cols != 5 {
		t.Fatalf("attention weights %dx%d, want 2x5", w.Rows, w.Cols)
	}
}

func TestNetworkPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewNetwork(NewDense("l", 2, 3, rng))
	preds := net.Predict(randMat(rng, 4, 2))
	if len(preds) != 4 {
		t.Fatalf("Predict returned %d values, want 4", len(preds))
	}
	for _, p := range preds {
		if p < 0 || p >= 3 {
			t.Fatalf("prediction %d out of range", p)
		}
	}
}

// TestInferMatchesEvalForward: the cache-free Infer path must produce
// bit-identical output to Forward in eval mode for every CALLOC layer type,
// and must not disturb caches a pending Backward depends on.
func TestInferMatchesEvalForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(
		NewDense("d1", 6, 8, rng),
		&ReLU{},
		NewDropout(0.3, rng),
		NewGaussianNoise(0.2, rng),
		NewDense("d2", 8, 4, rng),
		&Tanh{},
		&Sigmoid{},
	)
	if !net.ConcurrentSafe() {
		t.Fatal("all-Inferencer network reported not concurrent-safe")
	}
	x := randMat(rng, 9, 6)
	want := net.Forward(x, false)
	got := net.Infer(x)
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("Infer diverges from eval Forward at %d: %g vs %g", i, got.Data[i], v)
		}
	}

	// Infer between Forward(train) and Backward must not corrupt gradients.
	labels := make([]int, x.Rows)
	logits := net.Forward(x, false)
	_, grad := SoftmaxCrossEntropy(logits, labels)
	net.Infer(x) // must be cache-neutral
	net.Backward(grad)
	var nonZero bool
	for _, p := range net.Params() {
		if p.G.MaxAbs() > 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("no gradients accumulated after Infer interleave")
	}
	net.ZeroGrads()
}

func TestCrossAttentionInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ca := NewCrossAttention("a", 8, 5, rng)
	q := randMat(rng, 7, 8)
	k := randMat(rng, 11, 8)
	v := randMat(rng, 11, 3)
	want := ca.Forward(q, k, v)
	got := ca.Infer(q, k, v)
	for i, w := range want.Data {
		if got.Data[i] != w {
			t.Fatalf("CrossAttention Infer diverges at %d: %g vs %g", i, got.Data[i], w)
		}
	}
	// The precomputed-key path (used by core.Model.PredictBatch) must agree.
	kp := ca.ProjectKeys(k)
	got = ca.InferProjected(q, kp, v)
	for i, w := range want.Data {
		if got.Data[i] != w {
			t.Fatalf("CrossAttention InferProjected diverges at %d: %g vs %g", i, got.Data[i], w)
		}
	}
}

// TestNetworkInferFallback: a network containing a layer without Infer still
// evaluates through the Forward fallback and reports itself unsafe for
// concurrent inference.
func TestNetworkInferFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(
		NewDense("d", 4, 4, rng),
		NewMultiHeadSelfAttention("m", 2, 2, 1, rng),
	)
	if net.ConcurrentSafe() {
		t.Fatal("MHSA has no Infer; network must not be concurrent-safe")
	}
	x := randMat(rng, 3, 4)
	want := net.Forward(x, false)
	got := net.Infer(x)
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("fallback Infer diverges at %d", i)
		}
	}
}
