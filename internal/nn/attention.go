package nn

import (
	"fmt"
	"math"
	"math/rand"

	"calloc/internal/mat"
)

// softmaxRowsBackward computes the gradient through a row-wise softmax in
// place: given s = softmax(z) and dL/ds, it overwrites ds with dL/dz where
// dz_i = s_i·(ds_i − Σ_j ds_j·s_j), and returns ds. In-place is safe because
// each row's dot product is fully reduced before the row is rewritten.
func softmaxRowsBackward(s, ds *mat.Matrix) *mat.Matrix {
	for i := 0; i < s.Rows; i++ {
		srow, dsrow := s.Row(i), ds.Row(i)
		var dot float64
		for j, sv := range srow {
			dot += dsrow[j] * sv
		}
		for j, sv := range srow {
			dsrow[j] = sv * (dsrow[j] - dot)
		}
	}
	return ds
}

// SoftmaxRowsBackward is the exported softmax gradient used by the sharded
// trainer in internal/core, which hand-rolls the attention backward pass over
// row shards; see softmaxRowsBackward.
func SoftmaxRowsBackward(s, ds *mat.Matrix) *mat.Matrix { return softmaxRowsBackward(s, ds) }

// CrossAttention is the scaled dot-product attention at the centre of CALLOC
// (paper §IV.C): Attention(Q, K, V) = softmax(QKᵀ/√d_k)·V, where Q is the
// projected curriculum hyperspace H^C of the batch, K is the projected
// original-data hyperspace H^O of a memory set of reference fingerprints, and
// V holds the (constant) one-hot RP labels of that memory set. The output is
// therefore a label-space mixture weighted by hyperspace similarity — a
// differentiable soft-KNN over the fingerprint database.
type CrossAttention struct {
	Wq, Wk *Param
	DK     int

	// caches for Backward
	lastQ, lastK   *mat.Matrix // raw inputs (B×d, M×d)
	lastQp, lastKp *mat.Matrix // projected (B×dk, M×dk)
	lastS          *mat.Matrix // attention weights (B×M)
	lastV          *mat.Matrix // value matrix (M×C), constant
}

// NewCrossAttention creates query/key projections from embedding dimension d
// to attention dimension dk.
func NewCrossAttention(name string, d, dk int, rng *rand.Rand) *CrossAttention {
	ca := &CrossAttention{
		Wq: NewParam(name+".Wq", d, dk),
		Wk: NewParam(name+".Wk", d, dk),
		DK: dk,
	}
	ca.Wq.XavierInit(rng)
	ca.Wk.XavierInit(rng)
	return ca
}

// Forward computes softmax(q·Wq·(k·Wk)ᵀ/√dk)·v.
// q is B×d (queries), k is M×d (memory keys), v is M×C (memory values).
func (ca *CrossAttention) Forward(q, k, v *mat.Matrix) *mat.Matrix {
	if q.Cols != ca.Wq.W.Rows || k.Cols != ca.Wk.W.Rows {
		panic(fmt.Sprintf("nn: CrossAttention dims q%dx%d k%dx%d vs W %dx%d",
			q.Rows, q.Cols, k.Rows, k.Cols, ca.Wq.W.Rows, ca.Wq.W.Cols))
	}
	if k.Rows != v.Rows {
		panic(fmt.Sprintf("nn: CrossAttention memory mismatch K rows %d vs V rows %d", k.Rows, v.Rows))
	}
	ca.lastQ, ca.lastK, ca.lastV = q, k, v
	ca.lastQp = mat.Mul(q, ca.Wq.W)
	ca.lastKp = mat.Mul(k, ca.Wk.W)
	scores := mat.MulT(ca.lastQp, ca.lastKp)
	scores.ScaleInPlace(1 / math.Sqrt(float64(ca.DK)))
	ca.lastS = mat.Softmax(scores)
	return mat.Mul(ca.lastS, v)
}

// AttentionWeights returns the most recent softmax weights (B×M), useful for
// interpretability and tests.
func (ca *CrossAttention) AttentionWeights() *mat.Matrix { return ca.lastS }

// Infer computes the same attention output as Forward in eval mode but
// touches no caches, so it is safe to call concurrently (e.g. from the
// row-sharded batch predictor). All temporaries come from the scratch pool.
func (ca *CrossAttention) Infer(q, k, v *mat.Matrix) *mat.Matrix {
	if k.Cols != ca.Wk.W.Rows {
		panic(fmt.Sprintf("nn: CrossAttention dims k%dx%d vs W %dx%d",
			k.Rows, k.Cols, ca.Wk.W.Rows, ca.Wk.W.Cols))
	}
	kp := mat.MulInto(mat.GetScratch(k.Rows, ca.DK), k, ca.Wk.W)
	out := ca.InferProjected(q, kp, v)
	mat.PutScratch(kp)
	return out
}

// ProjectKeys returns k·Wk, the key projection of Infer, as a standalone
// step. The memory keys of a deployed model are fixed between weight
// updates, so callers evaluating many query batches against one memory
// (core.Model.PredictBatch) project once and reuse the result with
// InferProjected instead of re-projecting per batch shard.
func (ca *CrossAttention) ProjectKeys(k *mat.Matrix) *mat.Matrix {
	return mat.Mul(k, ca.Wk.W)
}

// InferProjected is Infer with the key projection kp = ProjectKeys(k)
// precomputed. Cache-free and safe for concurrent use.
func (ca *CrossAttention) InferProjected(q, kp, v *mat.Matrix) *mat.Matrix {
	if q.Cols != ca.Wq.W.Rows || kp.Cols != ca.DK {
		panic(fmt.Sprintf("nn: CrossAttention dims q%dx%d kp%dx%d vs W %dx%d",
			q.Rows, q.Cols, kp.Rows, kp.Cols, ca.Wq.W.Rows, ca.Wq.W.Cols))
	}
	if kp.Rows != v.Rows {
		panic(fmt.Sprintf("nn: CrossAttention memory mismatch K rows %d vs V rows %d", kp.Rows, v.Rows))
	}
	qp := mat.MulInto(mat.GetScratch(q.Rows, ca.DK), q, ca.Wq.W)
	scores := mat.MulTInto(mat.GetScratch(q.Rows, kp.Rows), qp, kp)
	scores.ScaleInPlace(1 / math.Sqrt(float64(ca.DK)))
	for i := 0; i < scores.Rows; i++ {
		mat.SoftmaxRow(scores.Row(i), scores.Row(i))
	}
	out := mat.Mul(scores, v)
	mat.PutScratch(qp)
	mat.PutScratch(scores)
	return out
}

// InferProjectedInto is InferProjected with every temporary drawn from ws
// instead of the scratch pool, making the steady-state pass allocation-free.
// The query projection multiplies against the lazily-packed Wq view. The
// result is valid until ws is Reset; cache-free and safe for concurrent use
// as long as each goroutine owns its workspace.
func (ca *CrossAttention) InferProjectedInto(ws *Workspace, q, kp, v *mat.Matrix) *mat.Matrix {
	if q.Cols != ca.Wq.W.Rows || kp.Cols != ca.DK {
		panic(fmt.Sprintf("nn: CrossAttention dims q%dx%d kp%dx%d vs W %dx%d",
			q.Rows, q.Cols, kp.Rows, kp.Cols, ca.Wq.W.Rows, ca.Wq.W.Cols))
	}
	if kp.Rows != v.Rows {
		panic(fmt.Sprintf("nn: CrossAttention memory mismatch K rows %d vs V rows %d", kp.Rows, v.Rows))
	}
	qp := mat.MulPackedInto(ws.Take(q.Rows, ca.DK), q, ca.Wq.Packed())
	scores := mat.MulTInto(ws.Take(q.Rows, kp.Rows), qp, kp)
	return ca.attendInto(ws, scores, v)
}

// attendInto finishes an attention pass over precomputed raw scores: scale
// by 1/√dk, softmax each row in place, and mix the value matrix. Shared by
// the projected-key inference variants.
func (ca *CrossAttention) attendInto(ws *Workspace, scores, v *mat.Matrix) *mat.Matrix {
	scores.ScaleInPlace(1 / math.Sqrt(float64(ca.DK)))
	for i := 0; i < scores.Rows; i++ {
		mat.SoftmaxRow(scores.Row(i), scores.Row(i))
	}
	return mat.MulInto(ws.Take(scores.Rows, v.Cols), scores, v)
}

// InferProjectedTInto is InferProjectedInto with the key projection supplied
// transposed: kpT = ProjectKeys(k)ᵀ, a dk×M row-major matrix. The scores
// product Qp·Kpᵀ then runs through the row-streaming axpy kernel instead of
// the dot-product kernel, which measures markedly faster at CALLOC memory
// sizes (the kernel streams kpT's rows contiguously and keeps each score
// tile L1-resident). Deployed models cache kpT once per weight refresh
// (core.Model.RefreshMemoryKeys), so the transpose is off the hot path.
func (ca *CrossAttention) InferProjectedTInto(ws *Workspace, q, kpT, v *mat.Matrix) *mat.Matrix {
	if q.Cols != ca.Wq.W.Rows || kpT.Rows != ca.DK {
		panic(fmt.Sprintf("nn: CrossAttention dims q%dx%d kpT%dx%d vs W %dx%d",
			q.Rows, q.Cols, kpT.Rows, kpT.Cols, ca.Wq.W.Rows, ca.Wq.W.Cols))
	}
	if kpT.Cols != v.Rows {
		panic(fmt.Sprintf("nn: CrossAttention memory mismatch KpT cols %d vs V rows %d", kpT.Cols, v.Rows))
	}
	qp := mat.MulPackedInto(ws.Take(q.Rows, ca.DK), q, ca.Wq.Packed())
	scores := mat.MulInto(ws.Take(q.Rows, kpT.Cols), qp, kpT)
	return ca.attendInto(ws, scores, v)
}

// InferPackedTInto is InferProjectedTInto with the memory operands supplied
// as Packed snapshots — kpT = ProjectKeys(k)ᵀ and the value matrix v, both
// packed at the caller's serving precision (core.Model.RefreshMemoryKeys
// rebuilds them per weight update). With Wq drawn at the workspace precision
// too, all three GEMMs of the attention pass (query projection, scores,
// value mix) stream reduced-precision panels; the softmax and every
// activation row stay float64. Cache-free and safe for concurrent use as
// long as each goroutine owns its workspace.
func (ca *CrossAttention) InferPackedTInto(ws *Workspace, q *mat.Matrix, kpT, v *mat.Packed) *mat.Matrix {
	if q.Cols != ca.Wq.W.Rows || kpT.Rows() != ca.DK {
		panic(fmt.Sprintf("nn: CrossAttention dims q%dx%d kpT%dx%d vs W %dx%d",
			q.Rows, q.Cols, kpT.Rows(), kpT.Cols(), ca.Wq.W.Rows, ca.Wq.W.Cols))
	}
	if kpT.Cols() != v.Rows() {
		panic(fmt.Sprintf("nn: CrossAttention memory mismatch KpT cols %d vs V rows %d", kpT.Cols(), v.Rows()))
	}
	qp := mat.MulPackedInto(ws.Take(q.Rows, ca.DK), q, ca.Wq.PackedPrec(ws.Precision()))
	scores := mat.MulPackedInto(ws.Take(q.Rows, kpT.Cols()), qp, kpT)
	scores.ScaleInPlace(1 / math.Sqrt(float64(ca.DK)))
	for i := 0; i < scores.Rows; i++ {
		mat.SoftmaxRow(scores.Row(i), scores.Row(i))
	}
	return mat.MulPackedInto(ws.Take(scores.Rows, v.Cols()), scores, v)
}

// Backward takes dL/d(output) (B×C) and returns (dL/dq, dL/dk). Parameter
// gradients accumulate into Wq.G and Wk.G. V is treated as constant.
func (ca *CrossAttention) Backward(gradOut *mat.Matrix) (dq, dk *mat.Matrix) {
	// dS = dOut·Vᵀ, turned into dZ in place by the softmax backward.
	dZ := mat.MulTInto(mat.GetScratch(gradOut.Rows, ca.lastV.Rows), gradOut, ca.lastV)
	softmaxRowsBackward(ca.lastS, dZ)
	dZ.ScaleInPlace(1 / math.Sqrt(float64(ca.DK)))
	// Z = Qp·Kpᵀ ⇒ dQp = dZ·Kp, dKp = dZᵀ·Qp.
	dQp := mat.MulInto(mat.GetScratch(dZ.Rows, ca.DK), dZ, ca.lastKp)
	dKp := mat.TMulInto(mat.GetScratch(dZ.Cols, ca.DK), dZ, ca.lastQp)
	gw := mat.TMulInto(mat.GetScratch(ca.Wq.W.Rows, ca.Wq.W.Cols), ca.lastQ, dQp)
	ca.Wq.G.AddInPlace(gw)
	mat.TMulInto(gw, ca.lastK, dKp)
	ca.Wk.G.AddInPlace(gw)
	mat.PutScratch(gw)
	dq = mat.MulT(dQp, ca.Wq.W)
	dk = mat.MulT(dKp, ca.Wk.W)
	mat.PutScratch(dQp)
	mat.PutScratch(dKp)
	mat.PutScratch(dZ)
	return dq, dk
}

// Params returns the projection weights.
func (ca *CrossAttention) Params() []*Param { return []*Param{ca.Wq, ca.Wk} }

// MultiHeadSelfAttention implements the ANVIL-style multi-head attention
// block [17]. The flat input row (length Tokens·Dim) is interpreted as Tokens
// tokens of Dim features; each head projects to Dim/Heads, attends across
// tokens, and the concatenated heads pass through an output projection. It
// satisfies the Layer interface so it can sit inside a Network, which also
// gives the attacks input gradients through the attention weights.
type MultiHeadSelfAttention struct {
	Tokens, Dim, Heads int
	dh                 int
	Wq, Wk, Wv, Wo     *Param

	lastX *mat.Matrix
	// per-sample caches, indexed [sample][head]
	q, k, v, s [][]*mat.Matrix
	concat     []*mat.Matrix
}

// NewMultiHeadSelfAttention creates a self-attention block over tokens×dim
// inputs with the given head count (dim must divide evenly by heads).
func NewMultiHeadSelfAttention(name string, tokens, dim, heads int, rng *rand.Rand) *MultiHeadSelfAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: dim %d not divisible by heads %d", dim, heads))
	}
	m := &MultiHeadSelfAttention{
		Tokens: tokens, Dim: dim, Heads: heads, dh: dim / heads,
		Wq: NewParam(name+".Wq", dim, dim),
		Wk: NewParam(name+".Wk", dim, dim),
		Wv: NewParam(name+".Wv", dim, dim),
		Wo: NewParam(name+".Wo", dim, dim),
	}
	m.Wq.XavierInit(rng)
	m.Wk.XavierInit(rng)
	m.Wv.XavierInit(rng)
	m.Wo.XavierInit(rng)
	return m
}

// headSlice extracts head h's columns from a T×Dim matrix as a T×dh copy.
func (m *MultiHeadSelfAttention) headSlice(x *mat.Matrix, h int) *mat.Matrix {
	out := mat.New(x.Rows, m.dh)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), x.Row(i)[h*m.dh:(h+1)*m.dh])
	}
	return out
}

// Forward runs self-attention independently on every row of x, where each
// row is a flattened Tokens×Dim sequence.
func (m *MultiHeadSelfAttention) Forward(x *mat.Matrix, _ bool) *mat.Matrix {
	if x.Cols != m.Tokens*m.Dim {
		panic(fmt.Sprintf("nn: MHSA input cols %d != tokens %d × dim %d", x.Cols, m.Tokens, m.Dim))
	}
	m.lastX = x
	b := x.Rows
	m.q = make([][]*mat.Matrix, b)
	m.k = make([][]*mat.Matrix, b)
	m.v = make([][]*mat.Matrix, b)
	m.s = make([][]*mat.Matrix, b)
	m.concat = make([]*mat.Matrix, b)
	out := mat.New(b, m.Tokens*m.Dim)
	scale := 1 / math.Sqrt(float64(m.dh))
	for i := 0; i < b; i++ {
		xi := mat.FromSlice(m.Tokens, m.Dim, x.Row(i)) // view, not copied
		qf := mat.Mul(xi, m.Wq.W)
		kf := mat.Mul(xi, m.Wk.W)
		vf := mat.Mul(xi, m.Wv.W)
		m.q[i] = make([]*mat.Matrix, m.Heads)
		m.k[i] = make([]*mat.Matrix, m.Heads)
		m.v[i] = make([]*mat.Matrix, m.Heads)
		m.s[i] = make([]*mat.Matrix, m.Heads)
		concat := mat.New(m.Tokens, m.Dim)
		for h := 0; h < m.Heads; h++ {
			qh := m.headSlice(qf, h)
			kh := m.headSlice(kf, h)
			vh := m.headSlice(vf, h)
			scores := mat.MulT(qh, kh)
			scores.ScaleInPlace(scale)
			sh := mat.Softmax(scores)
			oh := mat.Mul(sh, vh)
			for t := 0; t < m.Tokens; t++ {
				copy(concat.Row(t)[h*m.dh:(h+1)*m.dh], oh.Row(t))
			}
			m.q[i][h], m.k[i][h], m.v[i][h], m.s[i][h] = qh, kh, vh, sh
		}
		m.concat[i] = concat
		proj := mat.Mul(concat, m.Wo.W)
		copy(out.Row(i), proj.Data)
	}
	return out
}

// Backward propagates gradients through the attention computation for every
// sample and accumulates the projection-weight gradients.
func (m *MultiHeadSelfAttention) Backward(gradOut *mat.Matrix) *mat.Matrix {
	b := gradOut.Rows
	dx := mat.New(b, m.Tokens*m.Dim)
	scale := 1 / math.Sqrt(float64(m.dh))
	for i := 0; i < b; i++ {
		dOut := mat.FromSlice(m.Tokens, m.Dim, gradOut.Row(i))
		xi := mat.FromSlice(m.Tokens, m.Dim, m.lastX.Row(i))
		// Out = concat·Wo.
		m.Wo.G.AddInPlace(mat.TMul(m.concat[i], dOut))
		dConcat := mat.MulT(dOut, m.Wo.W)
		dQf := mat.New(m.Tokens, m.Dim)
		dKf := mat.New(m.Tokens, m.Dim)
		dVf := mat.New(m.Tokens, m.Dim)
		for h := 0; h < m.Heads; h++ {
			dOh := m.headSlice(dConcat, h)
			sh, vh, qh, kh := m.s[i][h], m.v[i][h], m.q[i][h], m.k[i][h]
			// Oh = S·V.
			dS := mat.MulT(dOh, vh)
			dVh := mat.TMul(sh, dOh)
			dZ := softmaxRowsBackward(sh, dS)
			dZ.ScaleInPlace(scale)
			// Z = Q·Kᵀ.
			dQh := mat.Mul(dZ, kh)
			dKh := mat.TMul(dZ, qh)
			for t := 0; t < m.Tokens; t++ {
				copy(dQf.Row(t)[h*m.dh:(h+1)*m.dh], dQh.Row(t))
				copy(dKf.Row(t)[h*m.dh:(h+1)*m.dh], dKh.Row(t))
				copy(dVf.Row(t)[h*m.dh:(h+1)*m.dh], dVh.Row(t))
			}
		}
		// Qf = X·Wq etc.
		m.Wq.G.AddInPlace(mat.TMul(xi, dQf))
		m.Wk.G.AddInPlace(mat.TMul(xi, dKf))
		m.Wv.G.AddInPlace(mat.TMul(xi, dVf))
		dXi := mat.MulT(dQf, m.Wq.W)
		dXi.AddInPlace(mat.MulT(dKf, m.Wk.W))
		dXi.AddInPlace(mat.MulT(dVf, m.Wv.W))
		copy(dx.Row(i), dXi.Data)
	}
	return dx
}

// Params returns the four projection matrices.
func (m *MultiHeadSelfAttention) Params() []*Param {
	return []*Param{m.Wq, m.Wk, m.Wv, m.Wo}
}
