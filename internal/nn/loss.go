package nn

import (
	"fmt"
	"math"

	"calloc/internal/mat"
)

// SoftmaxCrossEntropy computes the mean cross-entropy between softmax(logits)
// and the integer class labels, and the gradient with respect to the logits.
// The softmax and the loss are fused for numerical stability, giving the
// familiar gradient (softmax − onehot)/batch.
func SoftmaxCrossEntropy(logits *mat.Matrix, labels []int) (float64, *mat.Matrix) {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy %d rows vs %d labels", logits.Rows, len(labels)))
	}
	grad := mat.New(logits.Rows, logits.Cols)
	var loss float64
	inv := 1 / float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		y := labels[i]
		if y < 0 || y >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, logits.Cols))
		}
		lse := mat.LogSumExp(row)
		loss += (lse - row[y]) * inv
		grow := grad.Row(i)
		for j, v := range row {
			grow[j] = math.Exp(v-lse) * inv
		}
		grow[y] -= inv
	}
	return loss, grad
}

// MSE computes the mean squared error between pred and target (averaged over
// all elements) and the gradient with respect to pred.
func MSE(pred, target *mat.Matrix) (float64, *mat.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("nn: MSE shape mismatch %dx%d vs %dx%d",
			pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
	n := float64(len(pred.Data))
	grad := mat.New(pred.Rows, pred.Cols)
	var loss float64
	for i, v := range pred.Data {
		d := v - target.Data[i]
		loss += d * d / n
		grad.Data[i] = 2 * d / n
	}
	return loss, grad
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *mat.Matrix, labels []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	var correct int
	for i := 0; i < logits.Rows; i++ {
		if mat.ArgMax(logits.Row(i)) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}

// OneHot encodes labels as an n×classes matrix of 0/1 rows.
func OneHot(labels []int, classes int) *mat.Matrix {
	out := mat.New(len(labels), classes)
	for i, y := range labels {
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: OneHot label %d out of range [0,%d)", y, classes))
		}
		out.Set(i, y, 1)
	}
	return out
}
