package nn

import (
	"math"
	"math/rand"
	"testing"

	"calloc/internal/mat"
)

// numericalGrad estimates dLoss/dTheta for one scalar by central differences.
func numericalGrad(theta *float64, loss func() float64) float64 {
	const h = 1e-5
	orig := *theta
	*theta = orig + h
	lp := loss()
	*theta = orig - h
	lm := loss()
	*theta = orig
	return (lp - lm) / (2 * h)
}

func checkGrad(t *testing.T, name string, analytic, numeric float64) {
	t.Helper()
	diff := math.Abs(analytic - numeric)
	scale := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
	if diff/scale > 1e-4 {
		t.Errorf("%s: analytic %.8f vs numeric %.8f (rel %.2e)", name, analytic, numeric, diff/scale)
	}
}

// TestDenseNetworkGradients verifies backprop through Dense→ReLU→Dense with
// softmax cross-entropy against finite differences, for every parameter and
// for the input.
func TestDenseNetworkGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := NewNetwork(
		NewDense("l1", 4, 6, rng),
		&ReLU{},
		NewDense("l2", 6, 3, rng),
	)
	x := mat.New(5, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := []int{0, 1, 2, 1, 0}

	lossFn := func() float64 {
		logits := net.Forward(x, false)
		l, _ := SoftmaxCrossEntropy(logits, labels)
		return l
	}

	// Analytic gradients.
	logits := net.Forward(x, false)
	_, g := SoftmaxCrossEntropy(logits, labels)
	net.ZeroGrads()
	dx := net.Backward(g)

	for _, p := range net.Params() {
		for _, idx := range []int{0, len(p.W.Data) / 2, len(p.W.Data) - 1} {
			analytic := p.G.Data[idx]
			numeric := numericalGrad(&p.W.Data[idx], lossFn)
			checkGrad(t, p.Name, analytic, numeric)
		}
	}
	for _, idx := range []int{0, 7, 19} {
		numeric := numericalGrad(&x.Data[idx], lossFn)
		checkGrad(t, "input", dx.Data[idx], numeric)
	}
}

// TestActivationGradients checks Tanh and Sigmoid backprop numerically.
func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, tc := range []struct {
		name string
		act  Layer
	}{
		{"tanh", &Tanh{}},
		{"sigmoid", &Sigmoid{}},
	} {
		net := NewNetwork(NewDenseXavier("l1", 3, 4, rng), tc.act, NewDense("l2", 4, 2, rng))
		x := mat.New(2, 3)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		labels := []int{0, 1}
		lossFn := func() float64 {
			l, _ := SoftmaxCrossEntropy(net.Forward(x, false), labels)
			return l
		}
		_, g := SoftmaxCrossEntropy(net.Forward(x, false), labels)
		net.ZeroGrads()
		net.Backward(g)
		for _, p := range net.Params() {
			analytic := p.G.Data[0]
			numeric := numericalGrad(&p.W.Data[0], lossFn)
			checkGrad(t, tc.name+"/"+p.Name, analytic, numeric)
		}
	}
}

// TestMSEGradient verifies the MSE gradient numerically.
func TestMSEGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pred := mat.New(3, 4)
	target := mat.New(3, 4)
	for i := range pred.Data {
		pred.Data[i] = rng.NormFloat64()
		target.Data[i] = rng.NormFloat64()
	}
	_, grad := MSE(pred, target)
	for _, idx := range []int{0, 5, 11} {
		numeric := numericalGrad(&pred.Data[idx], func() float64 {
			l, _ := MSE(pred, target)
			return l
		})
		checkGrad(t, "mse", grad.Data[idx], numeric)
	}
}

// TestCrossAttentionGradients verifies the CALLOC attention backward pass
// (projections, query input, and key input) against finite differences.
func TestCrossAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	const d, dk, bsz, mem, classes = 5, 4, 3, 6, 4
	ca := NewCrossAttention("att", d, dk, rng)
	q := mat.New(bsz, d)
	k := mat.New(mem, d)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	for i := range k.Data {
		k.Data[i] = rng.NormFloat64()
	}
	v := OneHot([]int{0, 1, 2, 3, 0, 1}, classes)
	labels := []int{0, 1, 2}

	lossFn := func() float64 {
		out := ca.Forward(q, k, v)
		l, _ := SoftmaxCrossEntropy(out, labels)
		return l
	}

	out := ca.Forward(q, k, v)
	_, g := SoftmaxCrossEntropy(out, labels)
	for _, p := range ca.Params() {
		p.ZeroGrad()
	}
	dq, dkIn := ca.Backward(g)

	for _, p := range ca.Params() {
		for _, idx := range []int{0, len(p.W.Data) - 1} {
			numeric := numericalGrad(&p.W.Data[idx], lossFn)
			checkGrad(t, p.Name, p.G.Data[idx], numeric)
		}
	}
	for _, idx := range []int{0, 7, 14} {
		numeric := numericalGrad(&q.Data[idx], lossFn)
		checkGrad(t, "q-input", dq.Data[idx], numeric)
	}
	for _, idx := range []int{0, 13, 29} {
		numeric := numericalGrad(&k.Data[idx], lossFn)
		checkGrad(t, "k-input", dkIn.Data[idx], numeric)
	}
}

// TestMultiHeadSelfAttentionGradients verifies the ANVIL attention block's
// backward pass against finite differences.
func TestMultiHeadSelfAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	const tokens, dim, heads = 3, 4, 2
	mhsa := NewMultiHeadSelfAttention("mhsa", tokens, dim, heads, rng)
	net := NewNetwork(mhsa, NewDense("head", tokens*dim, 3, rng))
	x := mat.New(2, tokens*dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := []int{0, 2}

	lossFn := func() float64 {
		l, _ := SoftmaxCrossEntropy(net.Forward(x, false), labels)
		return l
	}
	_, g := SoftmaxCrossEntropy(net.Forward(x, false), labels)
	net.ZeroGrads()
	dx := net.Backward(g)

	for _, p := range net.Params() {
		for _, idx := range []int{0, len(p.W.Data) / 2} {
			numeric := numericalGrad(&p.W.Data[idx], lossFn)
			checkGrad(t, p.Name, p.G.Data[idx], numeric)
		}
	}
	for _, idx := range []int{0, 5, 17} {
		numeric := numericalGrad(&x.Data[idx], lossFn)
		checkGrad(t, "mhsa-input", dx.Data[idx], numeric)
	}
}
