// Package nn is a from-scratch neural-network training framework built for
// this reproduction: dense layers, the activation/noise layers the CALLOC
// paper uses, scaled dot-product and multi-head attention with full reverse-
// mode gradients, softmax cross-entropy and MSE losses, and SGD/Adam
// optimizers. Go's standard library has no deep-learning stack, so the paper's
// entire training pipeline — including the input gradients needed by the
// FGSM/PGD/MIM attacks — is implemented here on top of internal/mat.
package nn

import (
	"math"
	"math/rand"

	"calloc/internal/mat"
)

// Param is one trainable tensor: its value W and accumulated gradient G.
// Layers expose their Params so optimizers can update them in place.
type Param struct {
	Name string
	W    *mat.Matrix
	G    *mat.Matrix
}

// NewParam allocates a named r×c parameter with a zeroed gradient.
func NewParam(name string, r, c int) *Param {
	return &Param{Name: name, W: mat.New(r, c), G: mat.New(r, c)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.G.Data {
		p.G.Data[i] = 0
	}
}

// Size returns the number of scalar values in the parameter.
func (p *Param) Size() int { return len(p.W.Data) }

// XavierInit fills p.W with Glorot-uniform values, the initialisation used
// for tanh/sigmoid layers.
func (p *Param) XavierInit(rng *rand.Rand) {
	fanIn, fanOut := p.W.Rows, p.W.Cols
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range p.W.Data {
		p.W.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// HeInit fills p.W with He-normal values, the initialisation used for ReLU
// layers.
func (p *Param) HeInit(rng *rand.Rand) {
	std := math.Sqrt(2 / float64(p.W.Rows))
	for i := range p.W.Data {
		p.W.Data[i] = rng.NormFloat64() * std
	}
}

// CountParams sums the sizes of the given parameters.
func CountParams(ps []*Param) int {
	var n int
	for _, p := range ps {
		n += p.Size()
	}
	return n
}
