// Package nn is a from-scratch neural-network training framework built for
// this reproduction: dense layers, the activation/noise layers the CALLOC
// paper uses, scaled dot-product and multi-head attention with full reverse-
// mode gradients, softmax cross-entropy and MSE losses, and SGD/Adam
// optimizers. Go's standard library has no deep-learning stack, so the paper's
// entire training pipeline — including the input gradients needed by the
// FGSM/PGD/MIM attacks — is implemented here on top of internal/mat.
package nn

import (
	"math"
	"math/rand"
	"sync/atomic"

	"calloc/internal/mat"
)

// Param is one trainable tensor: its value W and accumulated gradient G.
// Layers expose their Params so optimizers can update them in place.
//
// Param also maintains lazily-packed snapshot views of W (mat.Packed) for
// the hot inference GEMMs — one cached slot per mat.Precision, so a float64
// training path and a reduced-precision serving path can share the Param
// without evicting each other's snapshot. The views are invalidated by a
// version counter: every in-place mutation of W must call NoteUpdate, and
// Packed/PackedPrec repack on first use after a bump. The optimizers,
// initialisers, Restore, and weight deserialisation all do this; code that
// writes W.Data directly must too.
type Param struct {
	Name string
	W    *mat.Matrix
	G    *mat.Matrix

	version atomic.Uint64
	packed  [mat.NumPrecisions]atomic.Pointer[packedView]
}

// packedView snapshots a packed copy of W together with the weight version
// it was packed at.
type packedView struct {
	version uint64
	p       *mat.Packed
}

// NoteUpdate marks the parameter's weights as changed, invalidating any
// packed view. Safe to call concurrently, but must not race with readers of
// W.Data (serving layers exclude weight updates around inference; see
// serve.Engine.Refresh).
func (p *Param) NoteUpdate() { p.version.Add(1) }

// Packed returns the full-precision (float64) packed snapshot view of W,
// repacking at most once per NoteUpdate. Concurrent callers may briefly pack
// twice; both results are equivalent and one wins the cache. The returned
// view must be treated as read-only and goes stale at the next weight update.
func (p *Param) Packed() *mat.Packed { return p.PackedPrec(mat.PrecFloat64) }

// PackedPrec is Packed at an explicit snapshot precision: reduced-precision
// views are quantized from the float64 weights at pack time and cached per
// precision under the same version counter, so serving at float32/int8 costs
// one quantization per weight update, not per query.
func (p *Param) PackedPrec(prec mat.Precision) *mat.Packed {
	v := p.version.Load()
	slot := &p.packed[prec]
	if pv := slot.Load(); pv != nil && pv.version == v {
		return pv.p
	}
	pk := mat.PackPrec(p.W, prec)
	slot.Store(&packedView{version: v, p: pk})
	return pk
}

// NewParam allocates a named r×c parameter with a zeroed gradient.
func NewParam(name string, r, c int) *Param {
	return &Param{Name: name, W: mat.New(r, c), G: mat.New(r, c)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.G.Data {
		p.G.Data[i] = 0
	}
}

// Size returns the number of scalar values in the parameter.
func (p *Param) Size() int { return len(p.W.Data) }

// XavierInit fills p.W with Glorot-uniform values, the initialisation used
// for tanh/sigmoid layers.
func (p *Param) XavierInit(rng *rand.Rand) {
	fanIn, fanOut := p.W.Rows, p.W.Cols
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range p.W.Data {
		p.W.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	p.NoteUpdate()
}

// HeInit fills p.W with He-normal values, the initialisation used for ReLU
// layers.
func (p *Param) HeInit(rng *rand.Rand) {
	std := math.Sqrt(2 / float64(p.W.Rows))
	for i := range p.W.Data {
		p.W.Data[i] = rng.NormFloat64() * std
	}
	p.NoteUpdate()
}

// CountParams sums the sizes of the given parameters.
func CountParams(ps []*Param) int {
	var n int
	for _, p := range ps {
		n += p.Size()
	}
	return n
}
