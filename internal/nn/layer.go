package nn

import (
	"math"
	"math/rand"

	"calloc/internal/mat"
)

// Layer is one differentiable stage of a feed-forward network. Forward caches
// whatever Backward needs, so each Backward call must follow the Forward call
// whose activations it differentiates. Backward accumulates parameter
// gradients (into Param.G) and returns the gradient with respect to the
// layer's input.
type Layer interface {
	Forward(x *mat.Matrix, train bool) *mat.Matrix
	Backward(gradOut *mat.Matrix) *mat.Matrix
	Params() []*Param
}

// Package-level activation functions, shared by the Forward/Infer paths and
// the workspace inference fallbacks.
//
//calloc:noalloc
func relu(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

//calloc:noalloc
func tanh(v float64) float64 { return math.Tanh(v) }

// Dense is a fully connected layer: y = x·W + b, with W of shape in×out.
type Dense struct {
	W, B  *Param
	lastX *mat.Matrix
}

// NewDense creates an in→out fully connected layer with He-initialised
// weights and zero biases.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		W: NewParam(name+".W", in, out),
		B: NewParam(name+".b", 1, out),
	}
	d.W.HeInit(rng)
	return d
}

// NewDenseXavier creates an in→out layer with Glorot-uniform weights,
// suited to tanh/sigmoid activations.
func NewDenseXavier(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		W: NewParam(name+".W", in, out),
		B: NewParam(name+".b", 1, out),
	}
	d.W.XavierInit(rng)
	return d
}

// Forward computes x·W + b.
func (d *Dense) Forward(x *mat.Matrix, _ bool) *mat.Matrix {
	d.lastX = x
	y := mat.Mul(x, d.W.W)
	y.AddRowVector(d.B.W.Data)
	return y
}

// Infer computes x·W + b without caching the input, so it is safe to call
// concurrently. Backward must not follow an Infer call.
func (d *Dense) Infer(x *mat.Matrix) *mat.Matrix {
	y := mat.Mul(x, d.W.W)
	y.AddRowVector(d.B.W.Data)
	return y
}

// InferActInto computes act(x·W + b) into a workspace buffer using the
// layer's lazily-packed weights at the workspace's precision, with the bias
// add and activation fused into the product pass. Zero steady-state
// allocations; the result is valid until ws is Reset. Backward must not
// follow.
func (d *Dense) InferActInto(ws *Workspace, x *mat.Matrix, act mat.Activation) *mat.Matrix {
	y := ws.Take(x.Rows, d.W.W.Cols)
	return mat.MulPackedBiasActInto(y, x, d.W.PackedPrec(ws.Precision()), d.B.W.Data, act)
}

// Backward accumulates ∂L/∂W and ∂L/∂b and returns ∂L/∂x.
func (d *Dense) Backward(gradOut *mat.Matrix) *mat.Matrix {
	gw := mat.TMulInto(mat.GetScratch(d.W.W.Rows, d.W.W.Cols), d.lastX, gradOut)
	d.W.G.AddInPlace(gw)
	mat.PutScratch(gw)
	for i := 0; i < gradOut.Rows; i++ {
		for j, v := range gradOut.Row(i) {
			d.B.G.Data[j] += v
		}
	}
	return mat.MulT(gradOut, d.W.W)
}

// BackwardInto is Backward with the input gradient written into dst instead
// of a fresh matrix (nil dst allocates). Parameter gradients accumulate as in
// Backward. It lets gradient consumers that run every epoch — FGSM crafting,
// the sharded trainer — reuse one destination across calls.
func (d *Dense) BackwardInto(gradOut, dst *mat.Matrix) *mat.Matrix {
	gw := mat.TMulInto(mat.GetScratch(d.W.W.Rows, d.W.W.Cols), d.lastX, gradOut)
	d.W.G.AddInPlace(gw)
	mat.PutScratch(gw)
	for i := 0; i < gradOut.Rows; i++ {
		for j, v := range gradOut.Row(i) {
			d.B.G.Data[j] += v
		}
	}
	return mat.MulTInto(dst, gradOut, d.W.W)
}

// Params returns the layer's weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU is the rectified linear activation.
type ReLU struct{ lastX *mat.Matrix }

// Forward applies max(0, x).
func (r *ReLU) Forward(x *mat.Matrix, _ bool) *mat.Matrix {
	r.lastX = x
	return x.Apply(relu)
}

// Infer applies max(0, x) without caching, safe for concurrent use.
func (r *ReLU) Infer(x *mat.Matrix) *mat.Matrix {
	return x.Apply(relu)
}

// Backward zeroes the gradient where the input was non-positive.
func (r *ReLU) Backward(gradOut *mat.Matrix) *mat.Matrix {
	out := mat.New(gradOut.Rows, gradOut.Cols)
	for i, v := range r.lastX.Data {
		if v > 0 {
			out.Data[i] = gradOut.Data[i]
		}
	}
	return out
}

// BackwardInto is Backward with the masked gradient written into dst (nil
// allocates); dst may alias gradOut for an in-place mask.
func (r *ReLU) BackwardInto(gradOut, dst *mat.Matrix) *mat.Matrix {
	if dst == nil {
		dst = mat.New(gradOut.Rows, gradOut.Cols)
	}
	for i, v := range r.lastX.Data {
		if v > 0 {
			dst.Data[i] = gradOut.Data[i]
		} else {
			dst.Data[i] = 0
		}
	}
	return dst
}

// Params returns nil: ReLU is stateless.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct{ lastY *mat.Matrix }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *mat.Matrix, _ bool) *mat.Matrix {
	t.lastY = x.Apply(math.Tanh)
	return t.lastY
}

// Infer applies tanh without caching, safe for concurrent use.
func (t *Tanh) Infer(x *mat.Matrix) *mat.Matrix { return x.Apply(math.Tanh) }

// Backward multiplies by 1−tanh².
func (t *Tanh) Backward(gradOut *mat.Matrix) *mat.Matrix {
	out := mat.New(gradOut.Rows, gradOut.Cols)
	for i, y := range t.lastY.Data {
		out.Data[i] = gradOut.Data[i] * (1 - y*y)
	}
	return out
}

// Params returns nil: Tanh is stateless.
func (t *Tanh) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct{ lastY *mat.Matrix }

// Forward applies 1/(1+e^−x) element-wise via the numerically stable
// two-branch form (mat.Sigmoid): the naive expression exponentiates −v,
// which overflows to +Inf for large negative v and turns the quotient into
// garbage; the stable form never exponentiates a positive argument.
func (s *Sigmoid) Forward(x *mat.Matrix, _ bool) *mat.Matrix {
	s.lastY = x.Apply(mat.Sigmoid)
	return s.lastY
}

// Infer applies the logistic function without caching, safe for concurrent
// use.
func (s *Sigmoid) Infer(x *mat.Matrix) *mat.Matrix {
	return x.Apply(mat.Sigmoid)
}

// Backward multiplies by y(1−y).
func (s *Sigmoid) Backward(gradOut *mat.Matrix) *mat.Matrix {
	out := mat.New(gradOut.Rows, gradOut.Cols)
	for i, y := range s.lastY.Data {
		out.Data[i] = gradOut.Data[i] * y * (1 - y)
	}
	return out
}

// Params returns nil: Sigmoid is stateless.
func (s *Sigmoid) Params() []*Param { return nil }

// Dropout implements inverted dropout: at train time each activation is
// dropped with probability Rate and survivors are scaled by 1/(1−Rate); at
// eval time it is the identity. CALLOC uses Rate 0.2 in the original-data
// embedding network (paper §V.A).
type Dropout struct {
	Rate float64
	rng  *rand.Rand
	mask *mat.Matrix
}

// NewDropout creates a dropout layer with the given drop probability.
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	return &Dropout{Rate: rate, rng: rng}
}

// Forward drops activations at train time and is the identity at eval time.
func (d *Dropout) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if !train || d.Rate <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.Rate
	d.mask = mat.New(x.Rows, x.Cols)
	out := mat.New(x.Rows, x.Cols)
	inv := 1 / keep
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = inv
			out.Data[i] = v * inv
		}
	}
	return out
}

// Infer is the identity: dropout is disabled at eval time.
func (d *Dropout) Infer(x *mat.Matrix) *mat.Matrix { return x }

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(gradOut *mat.Matrix) *mat.Matrix {
	if d.mask == nil {
		return gradOut
	}
	return mat.Hadamard(gradOut, d.mask)
}

// Params returns nil: Dropout is stateless.
func (d *Dropout) Params() []*Param { return nil }

// GaussianNoise adds N(0, Sigma²) noise at train time and is the identity at
// eval time. CALLOC uses Sigma 0.32 in the original-data embedding network to
// simulate environmental and device variation (paper §IV.B, §V.A).
type GaussianNoise struct {
	Sigma float64
	rng   *rand.Rand
}

// NewGaussianNoise creates the noise layer with standard deviation sigma.
func NewGaussianNoise(sigma float64, rng *rand.Rand) *GaussianNoise {
	return &GaussianNoise{Sigma: sigma, rng: rng}
}

// Forward adds noise when training.
func (g *GaussianNoise) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if !train || g.Sigma <= 0 {
		return x
	}
	out := mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = v + g.rng.NormFloat64()*g.Sigma
	}
	return out
}

// Infer is the identity: noise is disabled at eval time.
func (g *GaussianNoise) Infer(x *mat.Matrix) *mat.Matrix { return x }

// Backward passes the gradient through unchanged (noise is additive).
func (g *GaussianNoise) Backward(gradOut *mat.Matrix) *mat.Matrix { return gradOut }

// Params returns nil: GaussianNoise is stateless.
func (g *GaussianNoise) Params() []*Param { return nil }
