package nn

import "calloc/internal/mat"

// Workspace holds the per-layer scratch matrices of the allocation-free
// inference path. Buffers are handed out in Take order and recycled by
// Reset, so a fixed layer stack over stable batch shapes reaches a steady
// state where InferInto performs zero heap allocations: every buffer is
// reused from the previous call.
//
// A Workspace is NOT safe for concurrent use — it is the mutable state that
// the cache-free Infer path deliberately keeps out of the layers. Give each
// goroutine its own workspace (core.Model keeps a pool of Predictor handles
// for exactly this). Matrices returned by Take (and by the InferInto methods
// that use it) remain valid only until the next Reset.
type Workspace struct {
	bufs []*mat.Matrix
	next int
	prec mat.Precision
}

// NewWorkspace returns an empty workspace; buffers are grown on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// SetPrecision selects the packed-weight precision that InferInto (and the
// attention InferPacked* variants) use for every fused product through this
// workspace. The default is float64 — identical to pre-precision behaviour.
// Activations and workspace buffers stay float64 at every precision; only
// the weight-side snapshots change representation.
func (w *Workspace) SetPrecision(p mat.Precision) { w.prec = p }

// Precision returns the workspace's packed-weight precision.
func (w *Workspace) Precision() mat.Precision { return w.prec }

// Reset recycles every buffer for the next inference pass. Outputs handed
// out since the previous Reset are invalidated.
//
//calloc:noalloc
func (w *Workspace) Reset() { w.next = 0 }

// Take returns an r×c scratch matrix backed by the workspace. Contents are
// unspecified; Into-style kernels overwrite their destination fully.
//
//calloc:noalloc
func (w *Workspace) Take(r, c int) *mat.Matrix {
	if w.next < len(w.bufs) {
		m := w.bufs[w.next]
		w.next++
		n := r * c
		if cap(m.Data) < n {
			m.Data = make([]float64, n) //calloc:allow workspace cold growth; steady state reuses the buffer
		}
		m.Rows, m.Cols, m.Data = r, c, m.Data[:n]
		return m
	}
	m := mat.New(r, c) //calloc:allow workspace cold growth; steady state reuses the buffer
	w.bufs = append(w.bufs, m)
	w.next++
	return m
}

// fusableActivation maps an activation layer to the mat epilogue that a
// preceding Dense layer can fuse into its output pass.
func fusableActivation(l Layer) (mat.Activation, bool) {
	switch l.(type) {
	case *ReLU:
		return mat.ActReLU, true
	case *Tanh:
		return mat.ActTanh, true
	case *Sigmoid:
		return mat.ActSigmoid, true
	}
	return mat.ActIdentity, false
}

// InferInto runs the eval-mode forward pass using ws for every temporary, so
// steady-state inference allocates nothing. Dense layers multiply against
// their lazily-packed weights with the bias add fused into the product pass,
// and a Dense immediately followed by an activation layer fuses that
// activation into the same pass. Layers outside the fused set fall back to
// Infer/Forward semantics (which may allocate). Like Infer, the pass writes
// no layer caches; the result is valid until ws is Reset.
func (n *Network) InferInto(ws *Workspace, x *mat.Matrix) *mat.Matrix {
	for i := 0; i < len(n.Layers); i++ {
		switch l := n.Layers[i].(type) {
		case *Dense:
			act := mat.ActIdentity
			if i+1 < len(n.Layers) {
				if a, ok := fusableActivation(n.Layers[i+1]); ok {
					act = a
					i++
				}
			}
			x = l.InferActInto(ws, x, act)
		case *ReLU:
			x = x.ApplyInto(ws.Take(x.Rows, x.Cols), relu)
		case *Tanh:
			x = x.ApplyInto(ws.Take(x.Rows, x.Cols), tanh)
		case *Sigmoid:
			x = x.ApplyInto(ws.Take(x.Rows, x.Cols), mat.Sigmoid)
		case *Dropout, *GaussianNoise:
			// Identity at eval time.
		default:
			if inf, ok := l.(Inferencer); ok {
				x = inf.Infer(x)
			} else {
				x = l.Forward(x, false)
			}
		}
	}
	return x
}
