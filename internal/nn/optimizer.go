package nn

import "math"

// Optimizer updates parameters in place from their accumulated gradients and
// clears the gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param][]float64
}

// NewSGD creates an SGD optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float64)}
}

// Step applies one SGD update: v ← μv − η·g; w ← w + v.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float64, len(p.W.Data))
			s.velocity[p] = v
		}
		for i := range p.W.Data {
			v[i] = s.Momentum*v[i] - s.LR*p.G.Data[i]
			p.W.Data[i] += v[i]
		}
		p.NoteUpdate()
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba, 2015) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam creates an Adam optimizer with standard β₁=0.9, β₂=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64),
	}
}

// Step applies one Adam update with bias-corrected moments.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.W.Data))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.W.Data))
		}
		v := a.v[p]
		for i := range p.W.Data {
			g := p.G.Data[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / c1
			vh := v[i] / c2
			p.W.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.NoteUpdate()
		p.ZeroGrad()
	}
}

// ClipGradients scales all gradients down so that their global L2 norm does
// not exceed maxNorm. Returns the pre-clip norm.
func ClipGradients(params []*Param, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.G.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.G.Data {
				p.G.Data[i] *= scale
			}
		}
	}
	return norm
}
