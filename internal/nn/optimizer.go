package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters in place from their accumulated gradients and
// clears the gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param][]float64
}

// NewSGD creates an SGD optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float64)}
}

// Step applies one SGD update: v ← μv − η·g; w ← w + v.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float64, len(p.W.Data))
			s.velocity[p] = v
		}
		for i := range p.W.Data {
			v[i] = s.Momentum*v[i] - s.LR*p.G.Data[i]
			p.W.Data[i] += v[i]
		}
		p.NoteUpdate()
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba, 2015) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam creates an Adam optimizer with standard β₁=0.9, β₂=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64),
	}
}

// Step applies one Adam update with bias-corrected moments.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.W.Data))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.W.Data))
		}
		v := a.v[p]
		for i := range p.W.Data {
			g := p.G.Data[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / c1
			vh := v[i] / c2
			p.W.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.NoteUpdate()
		p.ZeroGrad()
	}
}

// AdamState is the serialisable snapshot of an Adam optimizer: the annealed
// learning rate, the step counter driving bias correction, and the first and
// second moments in parameter order. It exists so trainer checkpoints can
// resume optimisation mid-curriculum (core.TrainCheckpoint) instead of
// restarting with cold moments, which would spike the effective step size on
// the first resumed update.
type AdamState struct {
	LR, Beta1, Beta2, Eps float64
	T                     int
	M, V                  [][]float64
}

// State captures the optimizer's state for the given parameters, in order.
// Parameters the optimizer has not stepped yet get zero moments.
func (a *Adam) State(params []*Param) AdamState {
	s := AdamState{
		LR: a.LR, Beta1: a.Beta1, Beta2: a.Beta2, Eps: a.Eps, T: a.t,
		M: make([][]float64, len(params)),
		V: make([][]float64, len(params)),
	}
	for i, p := range params {
		s.M[i] = make([]float64, len(p.W.Data))
		s.V[i] = make([]float64, len(p.W.Data))
		copy(s.M[i], a.m[p])
		copy(s.V[i], a.v[p])
	}
	return s
}

// SetState restores a snapshot captured by State onto the same parameter
// list (same order, same shapes). Nil moment slices select zero moments, so
// a hand-built AdamState{LR: lr} acts as a fresh optimizer.
func (a *Adam) SetState(s AdamState, params []*Param) error {
	if len(s.M) != 0 && len(s.M) != len(params) {
		return fmt.Errorf("nn: Adam state has %d moment tensors, want %d", len(s.M), len(params))
	}
	if len(s.V) != len(s.M) {
		return fmt.Errorf("nn: Adam state has %d first moments but %d second moments", len(s.M), len(s.V))
	}
	for i, p := range params {
		if i >= len(s.M) {
			break
		}
		if s.M[i] != nil && len(s.M[i]) != len(p.W.Data) {
			return fmt.Errorf("nn: Adam moment %d has %d values, parameter %q has %d",
				i, len(s.M[i]), p.Name, len(p.W.Data))
		}
		if s.V[i] != nil && len(s.V[i]) != len(p.W.Data) {
			return fmt.Errorf("nn: Adam second moment %d has %d values, parameter %q has %d",
				i, len(s.V[i]), p.Name, len(p.W.Data))
		}
	}
	if s.LR > 0 {
		a.LR = s.LR
	}
	if s.Beta1 > 0 {
		a.Beta1 = s.Beta1
	}
	if s.Beta2 > 0 {
		a.Beta2 = s.Beta2
	}
	if s.Eps > 0 {
		a.Eps = s.Eps
	}
	a.t = s.T
	a.m = make(map[*Param][]float64, len(params))
	a.v = make(map[*Param][]float64, len(params))
	for i, p := range params {
		m := make([]float64, len(p.W.Data))
		v := make([]float64, len(p.W.Data))
		if i < len(s.M) {
			copy(m, s.M[i])
			copy(v, s.V[i])
		}
		a.m[p] = m
		a.v[p] = v
	}
	return nil
}

// ClipGradients scales all gradients down so that their global L2 norm does
// not exceed maxNorm. Returns the pre-clip norm.
func ClipGradients(params []*Param, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.G.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.G.Data {
				p.G.Data[i] *= scale
			}
		}
	}
	return norm
}
