// Package autoenc implements the autoencoder substrates of two baseline
// frameworks: the layer-wise-pretrained stacked autoencoder of SANGRIA [19]
// and the denoising autoencoder of WiDeep [14]. Both are built on the
// internal/nn framework and expose an Encode step whose codes feed a
// downstream classifier (gradient-boosted trees and a GP classifier,
// respectively).
package autoenc

import (
	"fmt"
	"math/rand"

	"calloc/internal/mat"
	"calloc/internal/nn"
)

// Config describes an autoencoder.
type Config struct {
	// Hidden lists encoder layer widths, e.g. [64, 32] for in→64→32.
	Hidden []int
	// DenoiseSigma, when positive, corrupts inputs with Gaussian noise
	// during training (denoising autoencoder, WiDeep style).
	DenoiseSigma float64
	// Epochs per training stage.
	Epochs int
	// LearningRate for Adam.
	LearningRate float64
	// Seed drives initialisation and corruption noise.
	Seed int64
}

// DefaultConfig compresses RSS fingerprints to 32 features.
func DefaultConfig() Config {
	return Config{Hidden: []int{64, 32}, Epochs: 150, LearningRate: 0.01, Seed: 1}
}

// Autoencoder is a fitted encoder/decoder pair.
type Autoencoder struct {
	cfg     Config
	encoder *nn.Network
	decoder *nn.Network
}

// Fit trains the autoencoder on x. For stacked configurations each layer pair
// is greedily pretrained on the previous layer's codes, then the whole stack
// is fine-tuned end to end — the SANGRIA recipe. With DenoiseSigma > 0 the
// reconstruction target is the clean input while the encoder sees a corrupted
// copy — the WiDeep recipe.
func Fit(x *mat.Matrix, cfg Config) (*Autoencoder, error) {
	if x.Rows == 0 {
		return nil, fmt.Errorf("autoenc: empty training set")
	}
	if len(cfg.Hidden) == 0 {
		return nil, fmt.Errorf("autoenc: no hidden layers configured")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 150
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.01
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	dims := append([]int{x.Cols}, cfg.Hidden...)
	var encLayers, decLayers []nn.Layer

	// Layer-wise pretraining: train each (encode, decode) pair to
	// reconstruct its own input, then stack.
	input := x
	for i := 0; i < len(cfg.Hidden); i++ {
		enc := nn.NewDenseXavier(fmt.Sprintf("enc%d", i), dims[i], dims[i+1], rng)
		dec := nn.NewDenseXavier(fmt.Sprintf("dec%d", i), dims[i+1], dims[i], rng)
		pair := nn.NewNetwork(enc, &nn.Tanh{}, dec)
		opt := nn.NewAdam(cfg.LearningRate)
		for e := 0; e < cfg.Epochs; e++ {
			in := corrupt(input, cfg.DenoiseSigma, rng)
			recon := pair.Forward(in, true)
			_, g := nn.MSE(recon, input)
			pair.Backward(g)
			opt.Step(pair.Params())
		}
		encStage := nn.NewNetwork(enc, &nn.Tanh{})
		input = encStage.Forward(input, false)
		encLayers = append(encLayers, enc, &nn.Tanh{})
		// Decoder layers stack in reverse with the nonlinearity between
		// stages: decN → Tanh → … → dec0.
		if i > 0 {
			decLayers = append([]nn.Layer{dec, &nn.Tanh{}}, decLayers...)
		} else {
			decLayers = append([]nn.Layer{dec}, decLayers...)
		}
	}

	ae := &Autoencoder{
		cfg:     cfg,
		encoder: nn.NewNetwork(encLayers...),
		decoder: nn.NewNetwork(decLayers...),
	}

	// End-to-end fine-tuning of the full stack.
	full := nn.NewNetwork(append(append([]nn.Layer{}, encLayers...), decLayers...)...)
	opt := nn.NewAdam(cfg.LearningRate / 2)
	for e := 0; e < cfg.Epochs/2; e++ {
		in := corrupt(x, cfg.DenoiseSigma, rng)
		recon := full.Forward(in, true)
		_, g := nn.MSE(recon, x)
		full.Backward(g)
		opt.Step(full.Params())
	}
	return ae, nil
}

// corrupt adds Gaussian noise clipped to the valid [0,1] RSS domain; sigma
// ≤ 0 returns the input unchanged.
func corrupt(x *mat.Matrix, sigma float64, rng *rand.Rand) *mat.Matrix {
	if sigma <= 0 {
		return x
	}
	out := mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = mat.Clamp(v+rng.NormFloat64()*sigma, 0, 1)
	}
	return out
}

// Encode maps inputs to their latent codes.
func (a *Autoencoder) Encode(x *mat.Matrix) *mat.Matrix {
	return a.encoder.Forward(x, false)
}

// EncoderInputGradient back-propagates a gradient with respect to the codes
// through the encoder and returns the gradient with respect to the inputs —
// the chain-rule link that lets white-box attackers differentiate classifiers
// stacked on autoencoder codes (WiDeep's GP head, SANGRIA's trees via a
// distilled student). Parameter gradients accumulated on the way are cleared.
func (a *Autoencoder) EncoderInputGradient(x, gradCodes *mat.Matrix) *mat.Matrix {
	a.encoder.Forward(x, false) // refresh layer caches for this input
	g := a.encoder.Backward(gradCodes)
	a.encoder.ZeroGrads()
	return g
}

// Reconstruct maps inputs through the full autoencoder.
func (a *Autoencoder) Reconstruct(x *mat.Matrix) *mat.Matrix {
	return a.decoder.Forward(a.Encode(x), false)
}

// ReconstructionError returns the mean squared reconstruction error on x.
func (a *Autoencoder) ReconstructionError(x *mat.Matrix) float64 {
	loss, _ := nn.MSE(a.Reconstruct(x), x)
	return loss
}

// CodeDim returns the latent width.
func (a *Autoencoder) CodeDim() int { return a.cfg.Hidden[len(a.cfg.Hidden)-1] }
