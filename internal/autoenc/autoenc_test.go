package autoenc

import (
	"math/rand"
	"testing"

	"calloc/internal/mat"
	"calloc/internal/nn"
)

// structuredData generates samples lying near a low-dimensional structure so
// a compressing autoencoder can reconstruct them well.
func structuredData(rng *rand.Rand, n, d int) *mat.Matrix {
	x := mat.New(n, d)
	for i := 0; i < n; i++ {
		t := rng.Float64()
		for j := 0; j < d; j++ {
			x.Set(i, j, mat.Clamp(t*float64(j%4)/4+rng.NormFloat64()*0.02, 0, 1))
		}
	}
	return x
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(mat.New(0, 4), DefaultConfig()); err == nil {
		t.Fatal("expected error for empty data")
	}
	cfg := DefaultConfig()
	cfg.Hidden = nil
	if _, err := Fit(mat.New(3, 4), cfg); err == nil {
		t.Fatal("expected error for no hidden layers")
	}
}

func TestReconstructionBeatsMeanBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := structuredData(rng, 80, 16)
	cfg := Config{Hidden: []int{8, 4}, Epochs: 200, LearningRate: 0.01, Seed: 1}
	ae, err := Fit(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: reconstruct every sample as the dataset mean.
	mean := make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(x.Rows)
	}
	meanRecon := mat.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(meanRecon.Row(i), mean)
	}
	baseline, _ := nn.MSE(meanRecon, x)
	got := ae.ReconstructionError(x)
	if got >= baseline {
		t.Fatalf("AE reconstruction MSE %.5f not below mean baseline %.5f", got, baseline)
	}
}

func TestEncodeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := structuredData(rng, 40, 12)
	cfg := Config{Hidden: []int{6, 3}, Epochs: 30, LearningRate: 0.01, Seed: 1}
	ae, err := Fit(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	codes := ae.Encode(x)
	if codes.Rows != 40 || codes.Cols != 3 {
		t.Fatalf("codes %dx%d, want 40x3", codes.Rows, codes.Cols)
	}
	if ae.CodeDim() != 3 {
		t.Fatalf("CodeDim = %d, want 3", ae.CodeDim())
	}
}

func TestDenoisingRemovesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := structuredData(rng, 100, 16)
	cfg := Config{Hidden: []int{8}, DenoiseSigma: 0.1, Epochs: 250, LearningRate: 0.01, Seed: 1}
	ae, err := Fit(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt fresh copies and check the AE pulls them back toward the
	// clean signal: reconstruction of noisy input should be closer to the
	// clean input than the noisy input itself is.
	noisy := x.Clone()
	for i := range noisy.Data {
		noisy.Data[i] = mat.Clamp(noisy.Data[i]+rng.NormFloat64()*0.1, 0, 1)
	}
	noiseMSE, _ := nn.MSE(noisy, x)
	recon := ae.Reconstruct(noisy)
	reconMSE, _ := nn.MSE(recon, x)
	if reconMSE >= noiseMSE {
		t.Fatalf("denoising AE did not denoise: recon MSE %.5f vs noise MSE %.5f", reconMSE, noiseMSE)
	}
}

func TestReconstructShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := structuredData(rng, 20, 10)
	cfg := Config{Hidden: []int{5}, Epochs: 20, LearningRate: 0.01, Seed: 1}
	ae, err := Fit(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := ae.Reconstruct(x)
	if r.Rows != x.Rows || r.Cols != x.Cols {
		t.Fatalf("reconstruction %dx%d, want %dx%d", r.Rows, r.Cols, x.Rows, x.Cols)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := structuredData(rng, 30, 8)
	cfg := Config{Hidden: []int{4}, Epochs: 50, LearningRate: 0.01, Seed: 9}
	a, err := Fit(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Encode(x), b.Encode(x)
	for i := range ca.Data {
		if ca.Data[i] != cb.Data[i] {
			t.Fatal("same seed should give identical autoencoders")
		}
	}
}
