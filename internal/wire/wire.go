// Package wire holds the small, allocation-conscious JSON/HTTP helpers the
// serving wire path (internal/node handlers, internal/cluster router) shares:
// pooled body reading behind http.MaxBytesReader, an option-int that decodes
// without the per-request pointer allocation of *int fields, and append-style
// JSON string emission for hand-built responses.
//
// The helpers exist because the high-rate endpoints decode and encode the
// same few fixed schemas millions of times: the generic
// json.NewDecoder/NewEncoder path allocates a decoder, its internal buffer,
// and boxed map values per request, which BENCH_pr6 showed dominating the
// serving wire once the compute core hit zero allocations. Everything here
// reuses caller-owned buffers instead.
package wire

import (
	"errors"
	"io"
	"net/http"
)

// OptInt is an optional JSON integer field that decodes without allocating —
// the drop-in replacement for *int request fields on pooled structs (a
// pointer field costs one allocation per request in which it appears, and a
// stale pointer on a pooled struct is an aliasing hazard). Absent fields and
// JSON null leave Set false.
type OptInt struct {
	Set bool
	V   int
}

// UnmarshalJSON implements json.Unmarshaler without touching the heap.
//
//calloc:noalloc
func (o *OptInt) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*o = OptInt{}
		return nil
	}
	neg := false
	i := 0
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	if i == len(b) {
		return errors.New("wire: empty integer") //calloc:allow malformed-input error path, off the hot path
	}
	v := 0
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return errors.New("wire: not an integer: " + string(b)) //calloc:allow malformed-input error path, off the hot path
		}
		v = v*10 + int(c-'0')
		if v < 0 {
			return errors.New("wire: integer overflow: " + string(b)) //calloc:allow malformed-input error path, off the hot path
		}
	}
	if neg {
		v = -v
	}
	*o = OptInt{Set: true, V: v}
	return nil
}

// ReadAll reads r to EOF into dst (appending from dst[:0]'s capacity) and
// returns the filled buffer — io.ReadAll with a caller-pooled destination.
//
//calloc:noalloc
func ReadAll(dst []byte, r io.Reader) ([]byte, error) {
	dst = dst[:0]
	if cap(dst) == 0 {
		dst = make([]byte, 0, 4096) //calloc:allow first-use growth; the caller pools dst across requests
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// ReadBody reads the request body into dst bounded by limit. On failure it
// writes the error response itself — 413 on overflow (with Connection: close,
// per MaxBytesReader convention), 400 otherwise — and returns ok == false.
// overflow reports which failure it was, for callers that account 413s
// separately.
//
// When the request declares a Content-Length the bound is enforced on the
// declared size directly — an oversized body is rejected before a byte is
// read, and an in-bounds one is read without the http.MaxBytesReader wrapper
// (the server already terminates the body at Content-Length), saving the
// wrapper's per-request allocations on the hot path. Only chunked bodies pay
// for the guard reader.
func ReadBody(w http.ResponseWriter, r *http.Request, dst []byte, limit int64) (body []byte, overflow, ok bool) {
	src := r.Body
	if r.ContentLength > limit {
		w.Header().Set("Connection", "close")
		http.Error(w, "http: request body too large", http.StatusRequestEntityTooLarge)
		return dst[:0], true, false
	} else if r.ContentLength < 0 {
		src = http.MaxBytesReader(w, r.Body, limit)
	}
	body, err := ReadAll(dst, src)
	if err == nil {
		return body, false, true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return body, true, false
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
	return body, false, false
}

const hexDigits = "0123456789abcdef"

// AppendString appends s to dst as a JSON string literal, escaping exactly
// what RFC 8259 requires (quote, backslash, control characters). Error
// messages and backend names are ASCII in practice, so the fast path is a
// straight copy; non-ASCII bytes pass through untouched (Go strings are
// UTF-8, which JSON accepts verbatim).
//
//calloc:noalloc
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
