package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOptInt(t *testing.T) {
	type payload struct {
		Floor OptInt `json:"floor"`
	}
	for _, tc := range []struct {
		in   string
		want OptInt
		bad  bool
	}{
		{`{}`, OptInt{}, false},
		{`{"floor": null}`, OptInt{}, false},
		{`{"floor": 0}`, OptInt{Set: true, V: 0}, false},
		{`{"floor": 3}`, OptInt{Set: true, V: 3}, false},
		{`{"floor": -2}`, OptInt{Set: true, V: -2}, false},
		{`{"floor": 123456}`, OptInt{Set: true, V: 123456}, false},
		{`{"floor": 1.5}`, OptInt{}, true},
		{`{"floor": "1"}`, OptInt{}, true},
		{`{"floor": 9999999999999999999999}`, OptInt{}, true},
	} {
		var p payload
		err := json.Unmarshal([]byte(tc.in), &p)
		if tc.bad {
			if err == nil {
				t.Fatalf("%s decoded to %+v, want error", tc.in, p.Floor)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if p.Floor != tc.want {
			t.Fatalf("%s = %+v, want %+v", tc.in, p.Floor, tc.want)
		}
	}
}

func TestAppendStringMatchesEncodingJSON(t *testing.T) {
	for _, s := range []string{
		"", "plain", `with "quotes"`, `back\slash`, "tab\tnewline\n", "ctrl\x01\x1f",
		"unicode: héllo — ok", "mixed\r\n\"end\"",
	} {
		got := string(AppendString(nil, s))
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back string
		if err := json.Unmarshal([]byte(got), &back); err != nil {
			t.Fatalf("AppendString(%q) emitted invalid JSON %s: %v", s, got, err)
		}
		if back != s {
			t.Fatalf("round trip of %q through %s = %q (encoding/json emits %s)", s, got, back, want)
		}
	}
}

func TestReadAllReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 256)
	for i := 0; i < 3; i++ {
		payload := strings.Repeat("x", 100+i)
		got, err := ReadAll(buf, strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != payload {
			t.Fatalf("read %q, want %q", got, payload)
		}
		if &got[0] != &buf[:1][0] {
			t.Fatal("ReadAll reallocated despite sufficient capacity")
		}
		buf = got
	}
	big, err := ReadAll(buf, strings.NewReader(strings.Repeat("y", 10000)))
	if err != nil || len(big) != 10000 {
		t.Fatalf("grow read = (%d bytes, %v)", len(big), err)
	}
}

func TestReadBodyOverflow413(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/x", bytes.NewReader(make([]byte, 2048)))
	body, overflow, ok := ReadBody(rec, req, nil, 1024)
	if ok || !overflow {
		t.Fatalf("oversized body accepted (ok=%v overflow=%v, %d bytes)", ok, overflow, len(body))
	}
	if rec.Code != 413 {
		t.Fatalf("status %d, want 413", rec.Code)
	}

	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/x", io.MultiReader(bytes.NewReader([]byte("ok"))))
	body, overflow, ok = ReadBody(rec, req, nil, 1024)
	if !ok || overflow || string(body) != "ok" {
		t.Fatalf("small body = (%q, overflow=%v, ok=%v)", body, overflow, ok)
	}
}
