package localizer

import (
	"fmt"
	"sync"

	"calloc/internal/baselines"
	"calloc/internal/bayes"
	"calloc/internal/core"
	"calloc/internal/gbdt"
	"calloc/internal/gp"
	"calloc/internal/knn"
	"calloc/internal/mat"
)

// adapter is the one concrete Localizer shape every constructor returns: a
// predict function plus metadata and the wrapped estimator for Unwrap.
type adapter struct {
	name    string
	in      int
	classes int
	base    any
	predict func(dst []int, x *mat.Matrix) []int
}

func (a *adapter) Name() string                               { return a.name }
func (a *adapter) InputDim() int                              { return a.in }
func (a *adapter) NumClasses() int                            { return a.classes }
func (a *adapter) Unwrap() any                                { return a.base }
func (a *adapter) PredictInto(dst []int, x *mat.Matrix) []int { return a.predict(dst, x) }

// Wrap builds a Localizer from a PredictInto-shaped function plus metadata.
// base is the underlying estimator, reachable through Unwrap. predictInto
// must be safe for concurrent use.
func Wrap(name string, inputDim, numClasses int, base any, predictInto func(dst []int, x *mat.Matrix) []int) Localizer {
	return &adapter{name: name, in: inputDim, classes: numClasses, base: base, predict: predictInto}
}

// FromCore adapts a CALLOC model. Predictions go through the model's pooled
// Predictor handles (PredictBatchInto), so the adapter is concurrency-safe
// and allocation-free in steady state.
func FromCore(name string, m *core.Model) Localizer {
	return Wrap(name, m.Cfg.NumAPs, m.Cfg.NumRPs, m, m.PredictBatchInto)
}

// FromKNN adapts a fitted k-nearest-neighbour classifier.
func FromKNN(name string, c *knn.Classifier) Localizer {
	return Wrap(name, c.InputDim(), c.NumClasses(), c, c.PredictInto)
}

// FromGP adapts a fitted Gaussian-process classifier.
func FromGP(name string, c *gp.Classifier) Localizer {
	return Wrap(name, c.InputDim(), c.NumClasses(), c, c.PredictInto)
}

// FromGBDT adapts a fitted gradient-boosted tree ensemble.
func FromGBDT(name string, c *gbdt.Classifier) Localizer {
	return Wrap(name, c.InputDim(), c.NumClasses(), c, c.PredictInto)
}

// FromBayes adapts a fitted weighted Gaussian Naive Bayes classifier.
func FromBayes(name string, c *bayes.Classifier) Localizer {
	return Wrap(name, c.InputDim(), c.NumClasses(), c, c.PredictInto)
}

// FromBaseline adapts any comparison framework implementing the
// baselines.Localizer interface (DNN, AdvLoc, ANVIL, SANGRIA, WiDeep).
// baselines.Localizer carries no metadata, so the fingerprint width and
// label-space size are supplied by the caller.
//
// The baseline frameworks predict through nn.Network.Forward, which writes
// per-layer caches and is NOT safe for concurrent use, so the adapter
// serialises Predict calls behind a mutex to honour the Localizer contract
// (the same instance may be registered under several keys and dispatched by
// several serve workers). These models are evaluation baselines, not
// latency-critical serving paths; the pooled-scratch backends (core, knn,
// gp, gbdt, bayes) run lock-free.
func FromBaseline(est baselines.Localizer, inputDim, numClasses int) Localizer {
	var mu sync.Mutex
	return Wrap(est.Name(), inputDim, numClasses, est, func(dst []int, x *mat.Matrix) []int {
		mu.Lock()
		preds := est.Predict(x)
		mu.Unlock()
		if dst == nil {
			return preds
		}
		if len(dst) != x.Rows {
			panic(fmt.Sprintf("localizer: prediction destination length %d, want %d", len(dst), x.Rows))
		}
		copy(dst, preds)
		return dst
	})
}
