// Package localizer defines the single serving-side contract every position
// estimator in this repository is adapted to — the CALLOC model, the
// classical learners (knn, gp, gbdt, bayes), and the comparison frameworks
// of internal/baselines — plus a concurrency-safe Registry that maps
// {building, floor, backend} keys to atomically versioned localizer
// snapshots with copy-on-write hot-swap.
//
// The interface exists so the serving, evaluation, and CLI layers dispatch
// through one shape instead of bespoke per-estimator loops: a new backend, a
// new building, or an A/B pair is a registry entry, not a plumbing change.
// The registry's two-level atomicity (copy-on-write key map, per-key
// atomic snapshot pointer) is what makes online model pushes safe: readers
// pin a snapshot for the duration of one batch while writers install the
// next version — see DESIGN.md "Registry snapshots and versioned hot-swap".
package localizer

import (
	"calloc/internal/mat"
)

// Localizer is a fitted position estimator ready to serve: it maps a batch
// of normalised RSS fingerprints to class predictions (reference points, or
// floor indices for a floor classifier) and carries the metadata the
// serving and evaluation layers route on.
//
// Implementations MUST be safe for concurrent use — the serving engine
// dispatches batches for one localizer from multiple workers, and the
// registry hands the same snapshot to every reader. Adapters over stateful
// estimators keep their scratch in pools (see the From* constructors).
type Localizer interface {
	// Name identifies the backend ("CALLOC", "KNN", "WiDeep", ...).
	Name() string
	// InputDim is the fingerprint width (visible APs) the localizer expects.
	InputDim() int
	// NumClasses is the size of the label space: reference points for a
	// position localizer, floors for a floor classifier.
	NumClasses() int
	// PredictInto classifies every row of x into dst and returns it. A nil
	// dst is allocated; otherwise len(dst) must equal x.Rows.
	PredictInto(dst []int, x *mat.Matrix) []int
}

// Unwrapper is implemented by adapters that expose their underlying
// estimator; the evaluation layer uses it to reach white-box gradient
// interfaces (baselines.Differentiable) the Localizer contract does not
// carry.
type Unwrapper interface {
	Unwrap() any
}

// Unwrap returns the estimator behind l when l is an adapter from this
// package (or anything else implementing Unwrapper), and l itself otherwise.
func Unwrap(l Localizer) any {
	if u, ok := l.(Unwrapper); ok {
		return u.Unwrap()
	}
	return l
}

// FootprintReporter is optionally implemented by estimators that can report
// their serving memory footprint: the packed-weight precision ("float64",
// "float32", "int8") and the resident bytes of the snapshots the inference
// path streams per query. Registry.List surfaces it (via Unwrap) in each
// Info, so /v1/models shows the per-model footprint fleet-wide; backends
// without packed snapshots simply omit the fields.
type FootprintReporter interface {
	Footprint() (precision string, weightBytes int64)
}
