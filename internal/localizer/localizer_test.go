package localizer

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"calloc/internal/baselines"
	"calloc/internal/bayes"
	"calloc/internal/core"
	"calloc/internal/fingerprint"
	"calloc/internal/gbdt"
	"calloc/internal/gp"
	"calloc/internal/knn"
	"calloc/internal/mat"
)

const (
	testAPs     = 12
	testClasses = 4
)

// fixture builds a small synthetic fingerprint problem every backend fits.
func fixture(t testing.TB) (x *mat.Matrix, labels []int, q *mat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	n := 60
	x = mat.New(n, testAPs)
	labels = make([]int, n)
	for i := 0; i < n; i++ {
		c := i % testClasses
		labels[i] = c
		for j := 0; j < testAPs; j++ {
			x.Set(i, j, 0.2*float64(c)+rng.Float64()*0.1)
		}
	}
	q = mat.New(15, testAPs)
	for i := range q.Data {
		q.Data[i] = rng.Float64() * 0.8
	}
	return x, labels, q
}

// TestAdapterEquivalence is the cross-backend contract test: every registry
// adapter must return exactly the labels of its wrapped estimator's direct
// Predict, report consistent metadata, and expose the estimator via Unwrap.
func TestAdapterEquivalence(t *testing.T) {
	x, labels, q := fixture(t)

	coreModel := func() *core.Model {
		cfg := core.DefaultConfig(testAPs, testClasses)
		cfg.EmbedDim, cfg.AttnDim = 16, 8
		m, err := core.NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		db := make([]fingerprint.Sample, x.Rows)
		for i := range db {
			db[i] = fingerprint.Sample{RSS: append([]float64(nil), x.Row(i)...), RP: labels[i]}
		}
		if err := m.SetMemory(db); err != nil {
			t.Fatal(err)
		}
		return m
	}()

	cases := []struct {
		backend string
		loc     Localizer
		direct  func(*mat.Matrix) []int
	}{
		{
			backend: "core",
			loc:     FromCore("CALLOC", coreModel),
			direct:  coreModel.Predict,
		},
		{
			backend: "knn",
			loc: func() Localizer {
				c, err := knn.New(x, labels, 3)
				if err != nil {
					t.Fatal(err)
				}
				return FromKNN("KNN", c)
			}(),
			direct: nil, // filled below from Unwrap
		},
		{
			backend: "gp",
			loc: func() Localizer {
				c, err := gp.Fit(x, labels, testClasses, gp.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				return FromGP("GPC", c)
			}(),
		},
		{
			backend: "gbdt",
			loc: func() Localizer {
				c, err := gbdt.Fit(x, labels, testClasses, gbdt.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				return FromGBDT("GBDT", c)
			}(),
		},
		{
			backend: "bayes",
			loc: func() Localizer {
				c, err := bayes.Fit(x, labels, testClasses)
				if err != nil {
					t.Fatal(err)
				}
				return FromBayes("Bayes", c)
			}(),
		},
		{
			backend: "baseline-dnn",
			loc: func() Localizer {
				cfg := baselines.DefaultDNNConfig()
				cfg.Epochs = 30
				d, err := baselines.FitDNN("DNN", x, labels, testClasses, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return FromBaseline(d, testAPs, testClasses)
			}(),
		},
		{
			backend: "baseline-anvil",
			loc: func() Localizer {
				cfg := baselines.DefaultANVILConfig()
				cfg.Epochs = 20
				a, err := baselines.FitANVIL(x, labels, testClasses, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return FromBaseline(a, testAPs, testClasses)
			}(),
		},
	}

	for _, tc := range cases {
		t.Run(tc.backend, func(t *testing.T) {
			direct := tc.direct
			if direct == nil {
				// Every estimator in this repo exposes Predict; reach it
				// through the adapter's Unwrap so the test also proves the
				// unwrapping path the attack layer depends on.
				est, ok := Unwrap(tc.loc).(interface{ Predict(*mat.Matrix) []int })
				if !ok {
					t.Fatalf("%s: Unwrap did not yield a predictor", tc.backend)
				}
				direct = est.Predict
			}
			want := direct(q)
			dst := make([]int, q.Rows)
			for pass := 0; pass < 2; pass++ { // reused dst, pooled scratch
				got := tc.loc.PredictInto(dst, q)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("pass %d row %d: adapter %d, direct %d", pass, i, got[i], want[i])
					}
				}
			}
			if got := tc.loc.PredictInto(nil, q); len(got) != q.Rows {
				t.Fatalf("nil dst: got %d predictions, want %d", len(got), q.Rows)
			}
			if tc.loc.InputDim() != testAPs || tc.loc.NumClasses() != testClasses {
				t.Fatalf("metadata (%d, %d), want (%d, %d)",
					tc.loc.InputDim(), tc.loc.NumClasses(), testAPs, testClasses)
			}
			if tc.loc.Name() == "" {
				t.Fatal("empty name")
			}
		})
	}
}

func TestRegistryRegisterGetSwap(t *testing.T) {
	x, labels, q := fixture(t)
	c1, err := knn.New(x, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := knn.New(x, labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := FromKNN("KNN", c1), FromKNN("KNN", c2)

	r := NewRegistry()
	key := Key{Building: 2, Floor: 1, Backend: "knn"}
	if _, ok := r.Get(key); ok {
		t.Fatal("empty registry returned a snapshot")
	}
	v, err := r.Register(key, l1)
	if err != nil || v != 1 {
		t.Fatalf("Register = (%d, %v), want (1, nil)", v, err)
	}
	if _, err := r.Register(key, l2); err == nil {
		t.Fatal("double Register accepted — replacement must go through Swap")
	}
	snap, ok := r.Get(key)
	if !ok || snap.Version != 1 || snap.Localizer != l1 {
		t.Fatalf("Get after Register = (%+v, %v)", snap, ok)
	}

	v, err = r.Swap(key, l2)
	if err != nil || v != 2 {
		t.Fatalf("Swap = (%d, %v), want (2, nil)", v, err)
	}
	snap2, _ := r.Get(key)
	if snap2.Version != 2 || snap2.Localizer != l2 {
		t.Fatalf("Get after Swap = %+v", snap2)
	}
	// The old snapshot stays usable — in-flight batches rely on this.
	if got := snap.Localizer.PredictInto(nil, q); len(got) != q.Rows {
		t.Fatal("pre-swap snapshot unusable")
	}

	if _, err := r.Swap(Key{Building: 9, Floor: 0, Backend: "knn"}, l1); err == nil {
		t.Fatal("Swap of unregistered key accepted")
	}
	if !r.Deregister(key) || r.Deregister(key) {
		t.Fatal("Deregister must report presence exactly once")
	}
	if _, ok := r.Get(key); ok {
		t.Fatal("Get after Deregister succeeded")
	}
}

func TestRegistrySwapEnforcesShapeStability(t *testing.T) {
	predict := func(dst []int, x *mat.Matrix) []int {
		if dst == nil {
			dst = make([]int, x.Rows)
		}
		return dst
	}
	r := NewRegistry()
	key := Key{Building: 1, Floor: 0, Backend: "a"}
	if _, err := r.Register(key, Wrap("a", 8, 4, nil, predict)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Swap(key, Wrap("a", 9, 4, nil, predict)); err == nil ||
		!strings.Contains(err.Error(), "input dim") {
		t.Fatalf("input-dim change accepted: %v", err)
	}
	if _, err := r.Swap(key, Wrap("a", 8, 5, nil, predict)); err == nil ||
		!strings.Contains(err.Error(), "label space") {
		t.Fatalf("label-space change accepted: %v", err)
	}
	if _, err := r.Register(Key{Building: 1, Floor: 0, Backend: ""}, Wrap("a", 8, 4, nil, predict)); err == nil {
		t.Fatal("empty backend accepted")
	}
	if _, err := r.Register(Key{Building: 1, Floor: 1, Backend: "a"}, Wrap("a", 0, 4, nil, predict)); err == nil {
		t.Fatal("zero input dim accepted")
	}
	if _, err := r.Register(Key{Building: 1, Floor: 1, Backend: "a"}, nil); err == nil {
		t.Fatal("nil localizer accepted")
	}
}

func TestRegistryListAndFloors(t *testing.T) {
	predict := func(dst []int, x *mat.Matrix) []int {
		if dst == nil {
			dst = make([]int, x.Rows)
		}
		return dst
	}
	r := NewRegistry()
	keys := []Key{
		{Building: 2, Floor: 0, Backend: "knn"},
		{Building: 1, Floor: 1, Backend: "calloc"},
		{Building: 1, Floor: 0, Backend: "calloc"},
		FloorKey(1),
	}
	for _, k := range keys {
		if _, err := r.Register(k, Wrap(k.Backend, 8, 4, nil, predict)); err != nil {
			t.Fatal(err)
		}
	}
	list := r.List()
	if len(list) != 4 || r.Len() != 4 {
		t.Fatalf("List returned %d entries, Len %d, want 4", len(list), r.Len())
	}
	// Ordered by building, then floor (classifier's -1 first), then backend.
	want := []Key{FloorKey(1), keys[2], keys[1], keys[0]}
	for i, info := range list {
		if info.Key != want[i] {
			t.Fatalf("List[%d] = %+v, want key %+v", i, info, want[i])
		}
		if info.InputDim != 8 || info.NumClasses != 4 || info.Version != 1 {
			t.Fatalf("List[%d] metadata %+v", i, info)
		}
	}
	floors := r.Floors(1, "calloc")
	if len(floors) != 2 || floors[0] != 0 || floors[1] != 1 {
		t.Fatalf("Floors(1, calloc) = %v, want [0 1]", floors)
	}
	if got := r.Floors(1, "knn"); len(got) != 0 {
		t.Fatalf("Floors(1, knn) = %v, want empty", got)
	}
}

// TestConcurrentGetAndSwap hammers lock-free reads against swaps and
// registrations under -race: readers must always observe a complete
// snapshot with a monotonically reachable version.
func TestConcurrentGetAndSwap(t *testing.T) {
	x, labels, q := fixture(t)
	fit := func(k int) Localizer {
		c, err := knn.New(x, labels, k)
		if err != nil {
			t.Fatal(err)
		}
		return FromKNN("KNN", c)
	}
	r := NewRegistry()
	key := Key{Building: 1, Floor: 0, Backend: "knn"}
	if _, err := r.Register(key, fit(3)); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := r.Swap(key, fit(3+i%3)); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
			other := Key{Building: 1, Floor: 0, Backend: "tmp"}
			if i%2 == 0 {
				if _, err := r.Register(other, fit(3)); err != nil {
					t.Errorf("register %d: %v", i, err)
					return
				}
			} else {
				r.Deregister(other)
			}
		}
	}()
	var lastV uint64
	for {
		select {
		case <-done:
			if snap, ok := r.Get(key); !ok || snap.Version != 201 {
				t.Fatalf("final version %d, want 201", snap.Version)
			}
			return
		default:
		}
		snap, ok := r.Get(key)
		if !ok {
			t.Fatal("key vanished during swaps")
		}
		if snap.Version < lastV {
			t.Fatalf("version went backwards: %d after %d", snap.Version, lastV)
		}
		lastV = snap.Version
		if got := snap.Localizer.PredictInto(nil, q); len(got) != q.Rows {
			t.Fatal("snapshot localizer broken")
		}
	}
}

// TestSwapIfVersionConflict: SwapIf must refuse to replace a version the
// caller never observed — the guard the online fine-tune loop relies on so
// a concurrent manual push is not clobbered by a stale-derived candidate.
func TestSwapIfVersionConflict(t *testing.T) {
	reg := NewRegistry()
	key := Key{Building: 1, Floor: 0, Backend: "stub"}
	mk := func() Localizer {
		return Wrap("stub", 4, 3, nil, func(dst []int, x *mat.Matrix) []int {
			if dst == nil {
				dst = make([]int, x.Rows)
			}
			return dst
		})
	}
	if _, err := reg.Register(key, mk()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SwapIf(key, mk(), 0); err == nil {
		t.Fatal("SwapIf(0) must be rejected (versions start at 1)")
	}
	v, err := reg.SwapIf(key, mk(), 1)
	if err != nil || v != 2 {
		t.Fatalf("SwapIf at the observed version: v=%d err=%v", v, err)
	}
	// A concurrent push happened (v2): an expectation of v1 must conflict.
	if _, err := reg.SwapIf(key, mk(), 1); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("stale SwapIf returned %v, want ErrVersionConflict", err)
	}
	if snap, _ := reg.Get(key); snap.Version != 2 {
		t.Fatalf("conflicting SwapIf mutated the registry: version %d", snap.Version)
	}
	// Unconditional Swap still advances.
	if v, err := reg.Swap(key, mk()); err != nil || v != 3 {
		t.Fatalf("Swap after conflict: v=%d err=%v", v, err)
	}
}

// stubLoc builds a trivial localizer of the given shape for candidate-lane
// tests.
func stubLoc(name string, inputDim, classes int) Localizer {
	return Wrap(name, inputDim, classes, nil, func(dst []int, x *mat.Matrix) []int {
		if dst == nil {
			dst = make([]int, x.Rows)
		}
		return dst
	})
}

// TestRegistryCandidateLifecycle walks the A/B lane end to end:
// stage → restage → abort → stage → promote (previous retained) → rollback.
func TestRegistryCandidateLifecycle(t *testing.T) {
	r := NewRegistry()
	key := Key{Building: 1, Floor: 0, Backend: "stub"}
	live := stubLoc("v1", testAPs, testClasses)
	if _, err := r.Register(key, live); err != nil {
		t.Fatal(err)
	}

	if _, err := r.Stage(Key{Building: 9, Floor: 0, Backend: "stub"}, live); err == nil {
		t.Fatal("staging for an unregistered key accepted")
	}
	if _, ok := r.Candidate(key); ok {
		t.Fatal("candidate reported before any Stage")
	}
	if _, err := r.Promote(key); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("Promote without candidate = %v, want ErrNoCandidate", err)
	}
	if r.Abort(key) {
		t.Fatal("Abort without candidate reported true")
	}

	// Stage enforces the same shape stability as Swap.
	if _, err := r.Stage(key, stubLoc("wide", testAPs+1, testClasses)); err == nil {
		t.Fatal("staged candidate with a different input dim accepted")
	}
	if _, err := r.Stage(key, stubLoc("classes", testAPs, testClasses+1)); err == nil {
		t.Fatal("staged candidate with a different label space accepted")
	}

	candA := stubLoc("candA", testAPs, testClasses)
	c, err := r.Stage(key, candA)
	if err != nil || c.Version != 1 || c.Base != 1 {
		t.Fatalf("Stage = (%+v, %v), want candidate 1 against base 1", c, err)
	}
	got, ok := r.Candidate(key)
	if !ok || got.Localizer != candA || got.Version != 1 {
		t.Fatalf("Candidate = (%+v, %v)", got, ok)
	}
	// Staging is invisible to the live slot.
	if snap, _ := r.Get(key); snap.Version != 1 || snap.Localizer != live {
		t.Fatalf("live slot disturbed by Stage: %+v", snap)
	}
	// Restaging bumps the candidate sequence without touching live.
	candB := stubLoc("candB", testAPs, testClasses)
	if c, err = r.Stage(key, candB); err != nil || c.Version != 2 || c.Base != 1 {
		t.Fatalf("restage = (%+v, %v), want candidate 2 against base 1", c, err)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].CandidateVersion != 2 || infos[0].CandidateName != "candB" {
		t.Fatalf("List does not carry the candidate: %+v", infos)
	}

	// AbortIf only withdraws the exact staged version — a stale owner must
	// not stomp a newer restage.
	if r.AbortIf(key, 1) {
		t.Fatal("AbortIf with a stale candidate version aborted the lane")
	}
	if _, ok := r.Candidate(key); !ok {
		t.Fatal("stale AbortIf removed the current candidate")
	}
	if !r.AbortIf(key, 2) {
		t.Fatal("AbortIf with the current version reported false")
	}
	if _, ok := r.Candidate(key); ok {
		t.Fatal("candidate survived a matching AbortIf")
	}
	if c, err = r.Stage(key, candB); err != nil || c.Version != 3 {
		t.Fatalf("restage after AbortIf = (%+v, %v), want candidate 3", c, err)
	}

	if !r.Abort(key) {
		t.Fatal("Abort of a staged candidate reported false")
	}
	if _, ok := r.Candidate(key); ok {
		t.Fatal("candidate survived Abort")
	}

	// Stage → promote: live advances, previous is retained, candidate clears.
	if c, err = r.Stage(key, candA); err != nil || c.Version != 4 {
		t.Fatalf("Stage after Abort = (%+v, %v), want candidate 4", c, err)
	}
	v, err := r.Promote(key)
	if err != nil || v != 2 {
		t.Fatalf("Promote = (%d, %v), want (2, nil)", v, err)
	}
	if snap, _ := r.Get(key); snap.Version != 2 || snap.Localizer != candA {
		t.Fatalf("live after Promote = %+v", snap)
	}
	if _, ok := r.Candidate(key); ok {
		t.Fatal("candidate survived Promote")
	}
	prev, ok := r.Previous(key)
	if !ok || prev.Version != 1 || prev.Localizer != live {
		t.Fatalf("Previous = (%+v, %v), want the displaced v1", prev, ok)
	}

	// Rollback restores the displaced localizer as a NEW version and
	// consumes the retained previous.
	v, err = r.Rollback(key)
	if err != nil || v != 3 {
		t.Fatalf("Rollback = (%d, %v), want (3, nil)", v, err)
	}
	if snap, _ := r.Get(key); snap.Version != 3 || snap.Localizer != live {
		t.Fatalf("live after Rollback = %+v", snap)
	}
	if _, ok := r.Previous(key); ok {
		t.Fatal("previous survived Rollback")
	}
	if _, err := r.Rollback(key); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("second Rollback = %v, want ErrNoCandidate", err)
	}
}

// TestRegistryPromoteConflictAndSwapInteraction: a live push while a
// candidate shadows makes Promote refuse with ErrVersionConflict, a Swap
// drops the retained previous (rollback must never stomp a manual push),
// and a rollback aborts the staged candidate.
func TestRegistryPromoteConflictAndSwapInteraction(t *testing.T) {
	r := NewRegistry()
	key := Key{Building: 1, Floor: 0, Backend: "stub"}
	if _, err := r.Register(key, stubLoc("v1", testAPs, testClasses)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Stage(key, stubLoc("cand", testAPs, testClasses)); err != nil {
		t.Fatal(err)
	}
	// A manual push lands while the candidate shadows.
	if _, err := r.Swap(key, stubLoc("manual", testAPs, testClasses)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Promote(key); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("Promote over a moved live slot = %v, want ErrVersionConflict", err)
	}
	// The candidate is still staged (the caller decides to abort/restage).
	if _, ok := r.Candidate(key); !ok {
		t.Fatal("conflicting Promote silently dropped the candidate")
	}
	r.Abort(key)

	// Promote, then manually Swap: the retained previous must be dropped —
	// rolling back would discard the manual push.
	if _, err := r.Stage(key, stubLoc("cand2", testAPs, testClasses)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Promote(key); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Previous(key); !ok {
		t.Fatal("no previous retained after Promote")
	}
	if _, err := r.Swap(key, stubLoc("manual2", testAPs, testClasses)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Previous(key); ok {
		t.Fatal("Swap left a stale rollback target")
	}
	if _, err := r.Rollback(key); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("Rollback after Swap = %v, want ErrNoCandidate", err)
	}

	// Promote again, stage another candidate, then roll back: the rollback
	// regrets the whole lineage, so the staged candidate is aborted too.
	if _, err := r.Stage(key, stubLoc("cand3", testAPs, testClasses)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Promote(key); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Stage(key, stubLoc("cand4", testAPs, testClasses)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rollback(key); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Candidate(key); ok {
		t.Fatal("Rollback left the lineage's candidate staged")
	}
}

// TestStageIfPromoteIf: the conditional candidate-lane operations let an
// owner stage/promote atomically against concurrent external pushes.
func TestStageIfPromoteIf(t *testing.T) {
	r := NewRegistry()
	key := Key{Building: 1, Floor: 0, Backend: "stub"}
	if _, err := r.Register(key, stubLoc("v1", testAPs, testClasses)); err != nil {
		t.Fatal(err)
	}

	// expect=0 stages only into an empty lane.
	mine, err := r.StageIf(key, stubLoc("mine", testAPs, testClasses), 0)
	if err != nil || mine.Version != 1 {
		t.Fatalf("StageIf into empty lane = (%+v, %v)", mine, err)
	}
	if _, err := r.StageIf(key, stubLoc("late", testAPs, testClasses), 0); !errors.Is(err, ErrCandidateConflict) {
		t.Fatalf("StageIf(expect empty) over an occupied lane = %v, want ErrCandidateConflict", err)
	}
	// expect=v restages only over the caller's own candidate.
	mine2, err := r.StageIf(key, stubLoc("mine2", testAPs, testClasses), mine.Version)
	if err != nil || mine2.Version != 2 {
		t.Fatalf("StageIf over own candidate = (%+v, %v)", mine2, err)
	}
	if _, err := r.StageIf(key, stubLoc("stale", testAPs, testClasses), mine.Version); !errors.Is(err, ErrCandidateConflict) {
		t.Fatalf("StageIf with a stale expectation = %v, want ErrCandidateConflict", err)
	}

	// PromoteIf refuses when the lane was restaged since the observation.
	if _, err := r.PromoteIf(key, mine.Version); !errors.Is(err, ErrCandidateConflict) {
		t.Fatalf("PromoteIf with a stale candidate = %v, want ErrCandidateConflict", err)
	}
	if _, err := r.PromoteIf(key, 0); err == nil {
		t.Fatal("PromoteIf(0) accepted")
	}
	v, err := r.PromoteIf(key, mine2.Version)
	if err != nil || v != 2 {
		t.Fatalf("PromoteIf with the current candidate = (%d, %v), want (2, nil)", v, err)
	}
	if _, err := r.PromoteIf(key, mine2.Version); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("PromoteIf on an empty lane = %v, want ErrNoCandidate", err)
	}
}
