package localizer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Key addresses one served localizer: a building, a floor within it, and a
// backend name ("calloc", "knn", ...). A building's floor classifier — the
// first stage of hierarchical routing — is registered under FloorKey.
type Key struct {
	Building int    `json:"building"`
	Floor    int    `json:"floor"`
	Backend  string `json:"backend"`
}

// ClassifierFloor is the reserved Floor value of a building's floor
// classifier, whose classes are floor indices rather than reference points.
const ClassifierFloor = -1

// FloorBackend is the conventional backend name of a floor classifier.
const FloorBackend = "floor"

// FloorKey returns the registry key of a building's floor classifier.
func FloorKey(building int) Key {
	return Key{Building: building, Floor: ClassifierFloor, Backend: FloorBackend}
}

func (k Key) String() string {
	if k.Floor == ClassifierFloor && k.Backend == FloorBackend {
		return fmt.Sprintf("building %d floor-classifier", k.Building)
	}
	return fmt.Sprintf("building %d floor %d backend %q", k.Building, k.Floor, k.Backend)
}

// Snapshot is one immutable registered localizer version. Readers that load
// a snapshot may keep using it for the duration of a batch even after a
// newer version is swapped in — snapshots are never mutated, only replaced.
type Snapshot struct {
	Localizer Localizer
	Version   uint64
}

// entry is the per-key slot; the snapshot pointer is the hot-swap point.
type entry struct {
	snap atomic.Pointer[Snapshot]
}

// Registry maps keys to atomically versioned localizer snapshots.
//
// Reads (Get, List) are lock-free: two atomic pointer loads — the
// copy-on-write key map, then the key's current snapshot. Writes (Register,
// Swap, Deregister) serialise on an internal mutex; Register/Deregister
// clone the key map, Swap only replaces the key's snapshot pointer, so a
// version push under load never copies the map and never blocks readers.
//
// The zero Registry is not ready; use NewRegistry.
type Registry struct {
	writeMu sync.Mutex
	entries atomic.Pointer[map[Key]*entry]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	m := make(map[Key]*entry)
	r.entries.Store(&m)
	return r
}

func validateLocalizer(key Key, loc Localizer) error {
	if loc == nil {
		return fmt.Errorf("localizer: nil localizer for %s", key)
	}
	if key.Backend == "" {
		return fmt.Errorf("localizer: empty backend name in key for %q", loc.Name())
	}
	if loc.InputDim() <= 0 || loc.NumClasses() <= 0 {
		return fmt.Errorf("localizer: %q has invalid dimensions %d×%d for %s",
			loc.Name(), loc.InputDim(), loc.NumClasses(), key)
	}
	return nil
}

// Register installs loc under key at version 1. Registering an existing key
// is an error — replacing a live localizer must go through Swap, which
// enforces shape stability and advances the version.
func (r *Registry) Register(key Key, loc Localizer) (uint64, error) {
	if err := validateLocalizer(key, loc); err != nil {
		return 0, err
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	old := *r.entries.Load()
	if _, exists := old[key]; exists {
		return 0, fmt.Errorf("localizer: %s already registered (use Swap to push a new version)", key)
	}
	clone := make(map[Key]*entry, len(old)+1)
	for k, v := range old {
		clone[k] = v
	}
	e := &entry{}
	e.snap.Store(&Snapshot{Localizer: loc, Version: 1})
	clone[key] = e
	r.entries.Store(&clone)
	return 1, nil
}

// ErrVersionConflict is returned by SwapIf when the key's current version
// no longer matches the caller's expectation — someone else published a
// version while the caller was preparing theirs.
var ErrVersionConflict = errors.New("localizer: version changed since it was observed")

// Swap atomically replaces key's localizer with loc and returns the new
// version (previous + 1). The key must already be registered and loc must
// preserve the input width and label-space size — lanes and clients sized
// against the old version stay valid across the swap. In-flight batches
// that loaded the previous snapshot finish on it; new batches observe the
// new version immediately.
func (r *Registry) Swap(key Key, loc Localizer) (uint64, error) {
	return r.swap(key, loc, 0)
}

// SwapIf is Swap conditioned on the key still being at expectVersion: it
// fails with ErrVersionConflict instead of replacing a version the caller
// never saw. Writers that derive their new localizer from the current one —
// the online fine-tune loop trains candidates from the incumbent's weights —
// use it so a concurrent push (e.g. a manual weight upload) is never
// silently overwritten by work based on stale state.
func (r *Registry) SwapIf(key Key, loc Localizer, expectVersion uint64) (uint64, error) {
	if expectVersion == 0 {
		return 0, fmt.Errorf("localizer: SwapIf expects a version ≥ 1 (versions start at 1)")
	}
	return r.swap(key, loc, expectVersion)
}

func (r *Registry) swap(key Key, loc Localizer, expectVersion uint64) (uint64, error) {
	if err := validateLocalizer(key, loc); err != nil {
		return 0, err
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	e, ok := (*r.entries.Load())[key]
	if !ok {
		return 0, fmt.Errorf("localizer: %s not registered (use Register first)", key)
	}
	cur := e.snap.Load()
	if expectVersion != 0 && cur.Version != expectVersion {
		return 0, fmt.Errorf("%w: %s at version %d, expected %d",
			ErrVersionConflict, key, cur.Version, expectVersion)
	}
	if loc.InputDim() != cur.Localizer.InputDim() {
		return 0, fmt.Errorf("localizer: swap of %s changes input dim %d→%d",
			key, cur.Localizer.InputDim(), loc.InputDim())
	}
	if loc.NumClasses() != cur.Localizer.NumClasses() {
		return 0, fmt.Errorf("localizer: swap of %s changes label space %d→%d",
			key, cur.Localizer.NumClasses(), loc.NumClasses())
	}
	next := &Snapshot{Localizer: loc, Version: cur.Version + 1}
	e.snap.Store(next)
	return next.Version, nil
}

// Get returns the current snapshot registered under key.
func (r *Registry) Get(key Key) (Snapshot, bool) {
	e, ok := (*r.entries.Load())[key]
	if !ok {
		return Snapshot{}, false
	}
	return *e.snap.Load(), true
}

// Deregister removes key, reporting whether it was present. Batches already
// holding the key's snapshot finish on it; subsequent Gets miss.
func (r *Registry) Deregister(key Key) bool {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	old := *r.entries.Load()
	if _, exists := old[key]; !exists {
		return false
	}
	clone := make(map[Key]*entry, len(old)-1)
	for k, v := range old {
		if k != key {
			clone[k] = v
		}
	}
	r.entries.Store(&clone)
	return true
}

// Len returns the number of registered keys.
func (r *Registry) Len() int { return len(*r.entries.Load()) }

// Info describes one registered localizer for listings (/v1/models).
type Info struct {
	Key        Key    `json:"key"`
	Name       string `json:"name"`
	Version    uint64 `json:"version"`
	InputDim   int    `json:"input_dim"`
	NumClasses int    `json:"classes"`
}

// List returns every registered localizer ordered by building, floor,
// backend (floor classifiers first within their building).
func (r *Registry) List() []Info {
	m := *r.entries.Load()
	out := make([]Info, 0, len(m))
	for k, e := range m {
		s := e.snap.Load()
		out = append(out, Info{
			Key:        k,
			Name:       s.Localizer.Name(),
			Version:    s.Version,
			InputDim:   s.Localizer.InputDim(),
			NumClasses: s.Localizer.NumClasses(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Building != b.Building {
			return a.Building < b.Building
		}
		if a.Floor != b.Floor {
			return a.Floor < b.Floor
		}
		return a.Backend < b.Backend
	})
	return out
}

// Floors returns the sorted floor indices registered for a building/backend
// pair (the floor classifier's ClassifierFloor entry is excluded). The
// serving layer uses it to validate routed floors and to fall back when a
// building has exactly one floor.
func (r *Registry) Floors(building int, backend string) []int {
	m := *r.entries.Load()
	var floors []int
	for k := range m {
		if k.Building == building && k.Backend == backend && k.Floor != ClassifierFloor {
			floors = append(floors, k.Floor)
		}
	}
	sort.Ints(floors)
	return floors
}
