package localizer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Key addresses one served localizer: a building, a floor within it, and a
// backend name ("calloc", "knn", ...). A building's floor classifier — the
// first stage of hierarchical routing — is registered under FloorKey.
type Key struct {
	Building int    `json:"building"`
	Floor    int    `json:"floor"`
	Backend  string `json:"backend"`
}

// ClassifierFloor is the reserved Floor value of a building's floor
// classifier, whose classes are floor indices rather than reference points.
const ClassifierFloor = -1

// FloorBackend is the conventional backend name of a floor classifier.
const FloorBackend = "floor"

// FloorKey returns the registry key of a building's floor classifier.
func FloorKey(building int) Key {
	return Key{Building: building, Floor: ClassifierFloor, Backend: FloorBackend}
}

// Less orders keys by building, floor, backend — the canonical listing
// order shared by Registry.List and the serving layer's per-key stats.
func (k Key) Less(o Key) bool {
	if k.Building != o.Building {
		return k.Building < o.Building
	}
	if k.Floor != o.Floor {
		return k.Floor < o.Floor
	}
	return k.Backend < o.Backend
}

func (k Key) String() string {
	if k.Floor == ClassifierFloor && k.Backend == FloorBackend {
		return fmt.Sprintf("building %d floor-classifier", k.Building)
	}
	return fmt.Sprintf("building %d floor %d backend %q", k.Building, k.Floor, k.Backend)
}

// Snapshot is one immutable registered localizer version. Readers that load
// a snapshot may keep using it for the duration of a batch even after a
// newer version is swapped in — snapshots are never mutated, only replaced.
type Snapshot struct {
	Localizer Localizer
	Version   uint64
}

// Candidate is a staged next version sitting in a key's A/B lane: it shadows
// live traffic (the serving engine scores it on sampled routed requests
// without returning its predictions) until it is promoted to the live slot or
// aborted. Candidate versions form their own sequence per key, independent of
// the live version — restaging bumps the candidate version without touching
// what is served.
type Candidate struct {
	Localizer Localizer
	// Version is the candidate sequence number (per key, starts at 1). The
	// serving layer resets a key's shadow counters when it changes.
	Version uint64
	// Base is the live version the candidate was staged against. Promote
	// refuses with ErrVersionConflict when the live slot has moved past it —
	// the candidate was built from (or validated against) a version nobody
	// serves any more.
	Base uint64
}

// entry is the per-key slot; the snapshot pointer is the hot-swap point. The
// candidate and previous pointers are the A/B lane: cand is the staged next
// version, prev retains the snapshot a Promote displaced so a regretted
// promotion can roll back.
type entry struct {
	snap atomic.Pointer[Snapshot]
	cand atomic.Pointer[Candidate]
	prev atomic.Pointer[Snapshot]

	candSeq uint64 // guarded by the registry writeMu
}

// Registry maps keys to atomically versioned localizer snapshots.
//
// Reads (Get, List) are lock-free: two atomic pointer loads — the
// copy-on-write key map, then the key's current snapshot. Writes (Register,
// Swap, Deregister) serialise on an internal mutex; Register/Deregister
// clone the key map, Swap only replaces the key's snapshot pointer, so a
// version push under load never copies the map and never blocks readers.
//
// The zero Registry is not ready; use NewRegistry.
type Registry struct {
	writeMu sync.Mutex
	entries atomic.Pointer[map[Key]*entry]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	m := make(map[Key]*entry)
	r.entries.Store(&m)
	return r
}

func validateLocalizer(key Key, loc Localizer) error {
	if loc == nil {
		return fmt.Errorf("localizer: nil localizer for %s", key)
	}
	if key.Backend == "" {
		return fmt.Errorf("localizer: empty backend name in key for %q", loc.Name())
	}
	if loc.InputDim() <= 0 || loc.NumClasses() <= 0 {
		return fmt.Errorf("localizer: %q has invalid dimensions %d×%d for %s",
			loc.Name(), loc.InputDim(), loc.NumClasses(), key)
	}
	return nil
}

// Register installs loc under key at version 1. Registering an existing key
// is an error — replacing a live localizer must go through Swap, which
// enforces shape stability and advances the version.
func (r *Registry) Register(key Key, loc Localizer) (uint64, error) {
	if err := validateLocalizer(key, loc); err != nil {
		return 0, err
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	old := *r.entries.Load()
	if _, exists := old[key]; exists {
		return 0, fmt.Errorf("localizer: %s already registered (use Swap to push a new version)", key)
	}
	clone := make(map[Key]*entry, len(old)+1)
	for k, v := range old {
		clone[k] = v
	}
	e := &entry{}
	e.snap.Store(&Snapshot{Localizer: loc, Version: 1})
	clone[key] = e
	r.entries.Store(&clone)
	return 1, nil
}

// ErrVersionConflict is returned by SwapIf when the key's current version
// no longer matches the caller's expectation — someone else published a
// version while the caller was preparing theirs.
var ErrVersionConflict = errors.New("localizer: version changed since it was observed")

// Swap atomically replaces key's localizer with loc and returns the new
// version (previous + 1). The key must already be registered and loc must
// preserve the input width and label-space size — lanes and clients sized
// against the old version stay valid across the swap. In-flight batches
// that loaded the previous snapshot finish on it; new batches observe the
// new version immediately.
func (r *Registry) Swap(key Key, loc Localizer) (uint64, error) {
	return r.swap(key, loc, 0)
}

// SwapIf is Swap conditioned on the key still being at expectVersion: it
// fails with ErrVersionConflict instead of replacing a version the caller
// never saw. Writers that derive their new localizer from the current one —
// the online fine-tune loop trains candidates from the incumbent's weights —
// use it so a concurrent push (e.g. a manual weight upload) is never
// silently overwritten by work based on stale state.
func (r *Registry) SwapIf(key Key, loc Localizer, expectVersion uint64) (uint64, error) {
	if expectVersion == 0 {
		return 0, fmt.Errorf("localizer: SwapIf expects a version ≥ 1 (versions start at 1)")
	}
	return r.swap(key, loc, expectVersion)
}

func (r *Registry) swap(key Key, loc Localizer, expectVersion uint64) (uint64, error) {
	if err := validateLocalizer(key, loc); err != nil {
		return 0, err
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	e, ok := (*r.entries.Load())[key]
	if !ok {
		return 0, fmt.Errorf("localizer: %s not registered (use Register first)", key)
	}
	cur := e.snap.Load()
	if expectVersion != 0 && cur.Version != expectVersion {
		return 0, fmt.Errorf("%w: %s at version %d, expected %d",
			ErrVersionConflict, key, cur.Version, expectVersion)
	}
	if loc.InputDim() != cur.Localizer.InputDim() {
		return 0, fmt.Errorf("localizer: swap of %s changes input dim %d→%d",
			key, cur.Localizer.InputDim(), loc.InputDim())
	}
	if loc.NumClasses() != cur.Localizer.NumClasses() {
		return 0, fmt.Errorf("localizer: swap of %s changes label space %d→%d",
			key, cur.Localizer.NumClasses(), loc.NumClasses())
	}
	next := &Snapshot{Localizer: loc, Version: cur.Version + 1}
	e.snap.Store(next)
	// A direct swap breaks the promotion lineage: rolling "back" past it
	// would stomp the version just pushed, so the retained previous is
	// dropped. A staged candidate stays — its Base no longer matches, which
	// Promote reports as ErrVersionConflict rather than silently serving it.
	e.prev.Store(nil)
	return next.Version, nil
}

// ErrNoCandidate is returned by Promote when the key has no staged
// candidate, and by Rollback when no displaced previous snapshot is retained.
var ErrNoCandidate = errors.New("localizer: no staged candidate")

// ErrCandidateConflict is returned by StageIf/PromoteIf when the lane's
// current candidate is not the one the caller last observed — someone else
// (re)staged or aborted while the caller was deciding.
var ErrCandidateConflict = errors.New("localizer: staged candidate changed since it was observed")

// Stage installs loc as key's A/B candidate, replacing any previously staged
// one, and returns the new candidate descriptor. The same shape-stability
// checks as Swap apply (a candidate that could not be promoted must not enter
// the shadow lane); the live slot is untouched, so staging is invisible to
// normal traffic. The candidate records the live version it was staged
// against — Promote later refuses if the live slot moved on.
func (r *Registry) Stage(key Key, loc Localizer) (Candidate, error) {
	return r.stage(key, loc, false, 0)
}

// StageIf is Stage conditioned on the lane's occupancy: expect 0 stages only
// into an EMPTY lane, expect v stages only over the candidate version v the
// caller itself staged earlier. Anything else fails with
// ErrCandidateConflict — an owner (the online trainer) uses it so a
// concurrent external push is never silently replaced.
func (r *Registry) StageIf(key Key, loc Localizer, expect uint64) (Candidate, error) {
	return r.stage(key, loc, true, expect)
}

func (r *Registry) stage(key Key, loc Localizer, conditional bool, expect uint64) (Candidate, error) {
	if err := validateLocalizer(key, loc); err != nil {
		return Candidate{}, err
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	e, ok := (*r.entries.Load())[key]
	if !ok {
		return Candidate{}, fmt.Errorf("localizer: %s not registered (use Register first)", key)
	}
	if conditional {
		cur := e.cand.Load()
		switch {
		case expect == 0 && cur != nil:
			return Candidate{}, fmt.Errorf("%w: %s lane holds candidate %d, expected it empty",
				ErrCandidateConflict, key, cur.Version)
		case expect != 0 && (cur == nil || cur.Version != expect):
			have := uint64(0)
			if cur != nil {
				have = cur.Version
			}
			return Candidate{}, fmt.Errorf("%w: %s lane holds candidate %d, expected %d",
				ErrCandidateConflict, key, have, expect)
		}
	}
	live := e.snap.Load()
	if loc.InputDim() != live.Localizer.InputDim() {
		return Candidate{}, fmt.Errorf("localizer: staging for %s changes input dim %d→%d",
			key, live.Localizer.InputDim(), loc.InputDim())
	}
	if loc.NumClasses() != live.Localizer.NumClasses() {
		return Candidate{}, fmt.Errorf("localizer: staging for %s changes label space %d→%d",
			key, live.Localizer.NumClasses(), loc.NumClasses())
	}
	e.candSeq++
	c := &Candidate{Localizer: loc, Version: e.candSeq, Base: live.Version}
	e.cand.Store(c)
	return *c, nil
}

// Candidate returns key's staged candidate, if any. Like Get it is lock-free;
// shadow dispatch pins the returned candidate for the duration of one batch.
func (r *Registry) Candidate(key Key) (Candidate, bool) {
	e, ok := (*r.entries.Load())[key]
	if !ok {
		return Candidate{}, false
	}
	c := e.cand.Load()
	if c == nil {
		return Candidate{}, false
	}
	return *c, true
}

// Abort clears key's staged candidate, reporting whether one was staged.
// Shadow batches already holding the candidate finish on it; its predictions
// were never returned to clients, so aborting has no serving-visible effect.
func (r *Registry) Abort(key Key) bool {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	e, ok := (*r.entries.Load())[key]
	if !ok || e.cand.Load() == nil {
		return false
	}
	e.cand.Store(nil)
	return true
}

// AbortIf clears key's staged candidate only when it is still at version —
// it lets an owner withdraw exactly the candidate it staged without stomping
// a concurrent restage by someone else (the candidate-lane analogue of
// SwapIf). Reports whether the candidate was aborted.
func (r *Registry) AbortIf(key Key, version uint64) bool {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	e, ok := (*r.entries.Load())[key]
	if !ok {
		return false
	}
	c := e.cand.Load()
	if c == nil || c.Version != version {
		return false
	}
	e.cand.Store(nil)
	return true
}

// Promote moves key's staged candidate into the live slot, advancing the live
// version, and retains the displaced snapshot for Rollback. It fails with
// ErrNoCandidate when nothing is staged and with ErrVersionConflict when the
// live version moved past the candidate's base (someone pushed a version
// while the candidate was shadowing — promoting would silently discard their
// work; the caller should Abort and restage against the new live version).
func (r *Registry) Promote(key Key) (uint64, error) {
	return r.promote(key, 0)
}

// PromoteIf is Promote conditioned on the lane still holding candidate
// version expect: it fails with ErrCandidateConflict when someone (re)staged
// or aborted the lane since the caller observed it, so a gate that validated
// one candidate can never accidentally install another.
func (r *Registry) PromoteIf(key Key, expect uint64) (uint64, error) {
	if expect == 0 {
		return 0, fmt.Errorf("localizer: PromoteIf expects a candidate version ≥ 1")
	}
	return r.promote(key, expect)
}

func (r *Registry) promote(key Key, expect uint64) (uint64, error) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	e, ok := (*r.entries.Load())[key]
	if !ok {
		return 0, fmt.Errorf("localizer: %s not registered", key)
	}
	c := e.cand.Load()
	if c == nil {
		return 0, fmt.Errorf("%w: %s", ErrNoCandidate, key)
	}
	if expect != 0 && c.Version != expect {
		return 0, fmt.Errorf("%w: %s lane holds candidate %d, expected %d",
			ErrCandidateConflict, key, c.Version, expect)
	}
	cur := e.snap.Load()
	if cur.Version != c.Base {
		return 0, fmt.Errorf("%w: %s at version %d, candidate staged against %d",
			ErrVersionConflict, key, cur.Version, c.Base)
	}
	next := &Snapshot{Localizer: c.Localizer, Version: cur.Version + 1}
	e.snap.Store(next)
	e.prev.Store(cur)
	e.cand.Store(nil)
	return next.Version, nil
}

// Rollback restores the snapshot the last Promote displaced, installing it as
// a NEW live version (versions only ever advance, so clients observe the
// rollback exactly like any other hot-swap). The retained previous is
// consumed and any staged candidate is aborted — the promotion lineage that
// led here is regretted wholesale. Fails with ErrNoCandidate when no
// previous snapshot is retained (no promotion since the last rollback/swap).
func (r *Registry) Rollback(key Key) (uint64, error) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	e, ok := (*r.entries.Load())[key]
	if !ok {
		return 0, fmt.Errorf("localizer: %s not registered", key)
	}
	p := e.prev.Load()
	if p == nil {
		return 0, fmt.Errorf("%w: %s has no retained previous snapshot to roll back to", ErrNoCandidate, key)
	}
	cur := e.snap.Load()
	next := &Snapshot{Localizer: p.Localizer, Version: cur.Version + 1}
	e.snap.Store(next)
	e.prev.Store(nil)
	e.cand.Store(nil)
	return next.Version, nil
}

// Previous returns the snapshot the last Promote displaced, if it is still
// retained (no Rollback or Swap consumed it).
func (r *Registry) Previous(key Key) (Snapshot, bool) {
	e, ok := (*r.entries.Load())[key]
	if !ok {
		return Snapshot{}, false
	}
	p := e.prev.Load()
	if p == nil {
		return Snapshot{}, false
	}
	return *p, true
}

// Get returns the current snapshot registered under key.
func (r *Registry) Get(key Key) (Snapshot, bool) {
	e, ok := (*r.entries.Load())[key]
	if !ok {
		return Snapshot{}, false
	}
	return *e.snap.Load(), true
}

// Deregister removes key, reporting whether it was present. Batches already
// holding the key's snapshot finish on it; subsequent Gets miss.
func (r *Registry) Deregister(key Key) bool {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	old := *r.entries.Load()
	if _, exists := old[key]; !exists {
		return false
	}
	clone := make(map[Key]*entry, len(old)-1)
	for k, v := range old {
		if k != key {
			clone[k] = v
		}
	}
	r.entries.Store(&clone)
	return true
}

// Len returns the number of registered keys.
func (r *Registry) Len() int { return len(*r.entries.Load()) }

// Info describes one registered localizer for listings (/v1/models).
type Info struct {
	Key        Key    `json:"key"`
	Name       string `json:"name"`
	Version    uint64 `json:"version"`
	InputDim   int    `json:"input_dim"`
	NumClasses int    `json:"classes"`
	// CandidateVersion is the staged A/B candidate's sequence number, 0 when
	// nothing is staged. CandidateName labels it.
	CandidateVersion uint64 `json:"candidate_version,omitempty"`
	CandidateName    string `json:"candidate_name,omitempty"`
	// Precision and WeightBytes report the packed-snapshot footprint for
	// backends whose estimator implements FootprintReporter; both are empty
	// for backends without packed weights.
	Precision   string `json:"precision,omitempty"`
	WeightBytes int64  `json:"weight_bytes,omitempty"`
}

// List returns every registered localizer ordered by building, floor,
// backend (floor classifiers first within their building).
func (r *Registry) List() []Info {
	m := *r.entries.Load()
	out := make([]Info, 0, len(m))
	for k, e := range m {
		s := e.snap.Load()
		info := Info{
			Key:        k,
			Name:       s.Localizer.Name(),
			Version:    s.Version,
			InputDim:   s.Localizer.InputDim(),
			NumClasses: s.Localizer.NumClasses(),
		}
		if c := e.cand.Load(); c != nil {
			info.CandidateVersion = c.Version
			info.CandidateName = c.Localizer.Name()
		}
		if fr, ok := Unwrap(s.Localizer).(FootprintReporter); ok {
			info.Precision, info.WeightBytes = fr.Footprint()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

// Floors returns the sorted floor indices registered for a building/backend
// pair (the floor classifier's ClassifierFloor entry is excluded). The
// serving layer uses it to validate routed floors and to fall back when a
// building has exactly one floor.
func (r *Registry) Floors(building int, backend string) []int {
	m := *r.entries.Load()
	var floors []int
	for k := range m {
		if k.Building == building && k.Backend == backend && k.Floor != ClassifierFloor {
			floors = append(floors, k.Floor)
		}
	}
	sort.Ints(floors)
	return floors
}
