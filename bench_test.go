// Package calloc_test holds the repository-level benchmark harness: one
// benchmark per table and figure of the paper's evaluation (§V), plus
// ablation benches for the design choices called out in DESIGN.md and
// micro-benchmarks of the performance-critical paths. Figure benches run the
// experiment drivers in a reduced mode (small buildings, short training) so
// `go test -bench=. -benchmem` finishes in minutes on one core; the custom
// metrics (mean_error_m, worst_error_m, ...) carry the reproduced numbers.
// Paper-scale numbers are produced by `calloc-eval -mode full` and recorded
// in EXPERIMENTS.md.
package calloc_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"calloc/internal/attack"
	"calloc/internal/cluster"
	"calloc/internal/core"
	"calloc/internal/curriculum"
	"calloc/internal/device"
	"calloc/internal/experiments"
	"calloc/internal/fingerprint"
	"calloc/internal/floorplan"
	"calloc/internal/localizer"
	"calloc/internal/mat"
	"calloc/internal/node"
	"calloc/internal/serve"
)

// benchMode is the reduced experiment scale used by the figure benches.
func benchMode() experiments.Mode {
	return experiments.Mode{
		Name:            "bench",
		BuildingIDs:     []int{1, 3},
		Devices:         []string{"OP3", "S7", "MOTO"},
		Epsilons:        []float64{0.1, 0.3, 0.5},
		Phis:            []int{20, 100},
		APScale:         0.2,
		PathScale:       0.15,
		EpochsPerLesson: 10,
		BaselineEpochs:  120,
		Seed:            1,
	}
}

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite shares one suite (and its trained-model cache) across benches.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(benchMode(), nil)
	})
	return suite
}

// BenchmarkFig1AttackImpact regenerates Fig 1: classical localizers (KNN,
// GPC, DNN) under FGSM. Reported metric: mean attacked error across models.
func BenchmarkFig1AttackImpact(b *testing.B) {
	s := benchSuite(b)
	if _, err := s.Fig1(); err != nil { // warm model caches outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r, err := s.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var mean float64
	for _, row := range last.Rows {
		mean += row.AttackedMean
	}
	b.ReportMetric(mean/float64(len(last.Rows)), "mean_attacked_error_m")
}

// BenchmarkFig2AttackIllustration regenerates Fig 2's weak/strong attack
// illustration on a single fingerprint.
func BenchmarkFig2AttackIllustration(b *testing.B) {
	s := benchSuite(b)
	if _, err := s.Fig2(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Heatmaps regenerates the Fig 4 device×building heatmaps for
// FGSM, PGD, and MIM. Reported metric: CALLOC's grand-mean error.
func BenchmarkFig4Heatmaps(b *testing.B) {
	s := benchSuite(b)
	if _, err := s.Fig4(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var sum float64
	var n int
	for _, hm := range last.Heatmaps {
		for _, row := range hm.Values {
			for _, v := range row {
				sum += v
				n++
			}
		}
	}
	b.ReportMetric(sum/float64(n), "mean_error_m")
}

// BenchmarkFig5CurriculumImpact regenerates Fig 5 (curriculum vs NC).
// Reported metrics: mean error with and without curriculum under FGSM.
func BenchmarkFig5CurriculumImpact(b *testing.B) {
	s := benchSuite(b)
	if _, err := s.Fig5(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		r, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(seriesMean(last.Series["FGSM"]), "curriculum_error_m")
	b.ReportMetric(seriesMean(last.Series["FGSM-NC"]), "nc_error_m")
}

// BenchmarkFig6StateOfTheArt regenerates the Fig 6 framework comparison.
// Reported metrics: the worst competitor's mean-error ratio vs CALLOC (the
// paper's "up to 6.03×" number at bench scale).
func BenchmarkFig6StateOfTheArt(b *testing.B) {
	s := benchSuite(b)
	if _, err := s.Fig6(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var worstMeanRatio, worstWorstRatio float64
	for _, row := range last.Rows {
		if row.MeanRatio > worstMeanRatio {
			worstMeanRatio = row.MeanRatio
		}
		if row.WorstRatio > worstWorstRatio {
			worstWorstRatio = row.WorstRatio
		}
	}
	b.ReportMetric(last.Rows[0].Mean, "calloc_mean_error_m")
	b.ReportMetric(worstMeanRatio, "max_mean_ratio_x")
	b.ReportMetric(worstWorstRatio, "max_worst_ratio_x")
}

// BenchmarkFig7PhiSweep regenerates the Fig 7 ø sweep under FGSM.
// Reported metric: CALLOC's error increase from ø=1 to ø=100.
func BenchmarkFig7PhiSweep(b *testing.B) {
	s := benchSuite(b)
	if _, err := s.Fig7(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	series := last.Series[experiments.NameCALLOC]
	b.ReportMetric(series[len(series)-1]-series[0], "calloc_phi_degradation_m")
}

// BenchmarkTableRegistries regenerates Tables I and II from the device and
// floorplan registries.
func BenchmarkTableRegistries(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table1()
		_ = experiments.Table2()
	}
}

// BenchmarkModelFootprint regenerates the §V.A footprint audit: parameter
// count and deployed size for the paper-dimension model, plus construction
// cost.
func BenchmarkModelFootprint(b *testing.B) {
	b.ReportAllocs()
	var m *core.Model
	for i := 0; i < b.N; i++ {
		var err error
		m, err = core.NewModel(core.PaperConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.NumParams()), "parameters")
	b.ReportMetric(m.ModelSizeKB(), "model_kB")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// benchDataset builds the shared small dataset for ablations.
var (
	ablOnce sync.Once
	ablDS   *fingerprint.Dataset
)

func ablationDataset(b *testing.B) *fingerprint.Dataset {
	b.Helper()
	ablOnce.Do(func() {
		spec := floorplan.Spec{
			ID: 90, Name: "Ablation", VisibleAPs: 24, PathLengthM: 12,
			Characteristics: "bench", Model: floorplan.Registry()[2].Model,
		}
		bld := floorplan.Build(spec, 1)
		ds, err := fingerprint.Collect(bld, device.Registry(), fingerprint.DefaultCollectConfig())
		if err != nil {
			b.Fatal(err)
		}
		ablDS = ds
	})
	return ablDS
}

// ablationError trains a model variant and reports its FGSM-attacked error.
func ablationError(b *testing.B, mutate func(*core.Config, *core.TrainConfig)) float64 {
	b.Helper()
	ds := ablationDataset(b)
	cfg := core.DefaultConfig(ds.NumAPs, ds.NumRPs)
	cfg.EmbedDim, cfg.AttnDim = 32, 16
	tc := core.DefaultTrainConfig()
	tc.Lessons = curriculum.Schedule(4, 100, 0.1)
	tc.EpochsPerLesson = 15
	mutate(&cfg, &tc)
	m, err := core.NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Train(ds.Train, tc); err != nil {
		b.Fatal(err)
	}
	var total float64
	var n int
	for _, dev := range []string{"OP3", "MOTO"} {
		x := fingerprint.X(ds.Test[dev])
		labels := fingerprint.Labels(ds.Test[dev])
		adv := attack.Craft(attack.FGSM, m, x, labels,
			attack.Config{Epsilon: 0.3, PhiPercent: 50, Seed: 7})
		for i, p := range m.Predict(adv) {
			total += ds.ErrorMeters(p, labels[i])
			n++
		}
	}
	return total / float64(n)
}

// BenchmarkAblationHyperspaceMSE compares the hyperspace-consistency loss
// weights λ ∈ {0, 0.02 (default), 0.5}: the calibration story behind
// DESIGN.md's λ choice.
func BenchmarkAblationHyperspaceMSE(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off := ablationError(b, func(c *core.Config, _ *core.TrainConfig) { c.HyperspaceLambda = 0 })
		def := ablationError(b, func(c *core.Config, _ *core.TrainConfig) { c.HyperspaceLambda = 0.02 })
		strong := ablationError(b, func(c *core.Config, _ *core.TrainConfig) { c.HyperspaceLambda = 0.5 })
		b.ReportMetric(off, "lambda0_error_m")
		b.ReportMetric(def, "lambda002_error_m")
		b.ReportMetric(strong, "lambda05_error_m")
	}
}

// BenchmarkAblationAdaptive compares the adaptive revert-and-ease mechanism
// (§IV.D) against a static curriculum (no reverts).
func BenchmarkAblationAdaptive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adaptive := ablationError(b, func(_ *core.Config, t *core.TrainConfig) { t.Patience = 3 })
		static := ablationError(b, func(_ *core.Config, t *core.TrainConfig) {
			t.Patience = 1 << 20 // monitor never fires
		})
		b.ReportMetric(adaptive, "adaptive_error_m")
		b.ReportMetric(static, "static_error_m")
	}
}

// BenchmarkAblationMemorySize compares full-database attention memory with
// per-class subsampling, the deployment memory/accuracy trade-off.
func BenchmarkAblationMemorySize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		full := ablationError(b, func(c *core.Config, _ *core.TrainConfig) { c.MemoryPerClass = 0 })
		two := ablationError(b, func(c *core.Config, _ *core.TrainConfig) { c.MemoryPerClass = 2 })
		one := ablationError(b, func(c *core.Config, _ *core.TrainConfig) { c.MemoryPerClass = 1 })
		b.ReportMetric(full, "mem_full_error_m")
		b.ReportMetric(two, "mem2_error_m")
		b.ReportMetric(one, "mem1_error_m")
	}
}

// --- Micro-benchmarks of performance-critical paths ---

func trainedBenchModel(b *testing.B) (*core.Model, *fingerprint.Dataset) {
	b.Helper()
	ds := ablationDataset(b)
	cfg := core.DefaultConfig(ds.NumAPs, ds.NumRPs)
	cfg.EmbedDim, cfg.AttnDim = 32, 16
	m, err := core.NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tc := core.DefaultTrainConfig()
	tc.Lessons = curriculum.Schedule(3, 100, 0.1)
	tc.EpochsPerLesson = 10
	if _, err := m.Train(ds.Train, tc); err != nil {
		b.Fatal(err)
	}
	return m, ds
}

// BenchmarkCALLOCInference measures single-fingerprint localization latency,
// the figure that matters for the paper's mobile-deployment claim.
func BenchmarkCALLOCInference(b *testing.B) {
	m, ds := trainedBenchModel(b)
	x := fingerprint.X(ds.Test["OP3"][:1])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

// BenchmarkFGSMCraft measures single-step attack generation against CALLOC.
func BenchmarkFGSMCraft(b *testing.B) {
	m, ds := trainedBenchModel(b)
	x := fingerprint.X(ds.Test["OP3"])
	labels := fingerprint.Labels(ds.Test["OP3"])
	cfg := attack.Config{Epsilon: 0.3, PhiPercent: 50, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.Craft(attack.FGSM, m, x, labels, cfg)
	}
}

// BenchmarkPGDCraft measures 10-step iterative attack generation.
func BenchmarkPGDCraft(b *testing.B) {
	m, ds := trainedBenchModel(b)
	x := fingerprint.X(ds.Test["OP3"])
	labels := fingerprint.Labels(ds.Test["OP3"])
	cfg := attack.Config{Epsilon: 0.3, PhiPercent: 50, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.Craft(attack.PGD, m, x, labels, cfg)
	}
}

// BenchmarkMatMul measures the dense kernel all models sit on.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := mat.New(128, 128)
	c := mat.New(128, 128)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		c.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.Mul(a, c)
	}
}

// randDense builds an r×c matrix of standard normals.
func randDense(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// matShapes are representative CALLOC products: batch × AP-count × embedding
// (the embedding layers at paper dimensions), batch × embed × d_k (the
// attention projections), memory × d_k scores, and the 256³ reference shape
// the parallel-speedup acceptance criterion is stated at.
var matShapes = []struct {
	name    string
	m, k, n int
}{
	{"embed_256x165x128", 256, 165, 128},
	{"attnproj_256x128x74", 256, 128, 74},
	{"scores_256x74x512", 256, 74, 512},
	{"square_256x256x256", 256, 256, 256},
}

// benchProducts measures one product kernel sequentially and in parallel at
// every representative shape, with allocation counts.
func benchProducts(b *testing.B, mul func(x, y *mat.Matrix) *mat.Matrix, transposeB bool) {
	for _, sh := range matShapes {
		rng := rand.New(rand.NewSource(2))
		x := randDense(rng, sh.m, sh.k)
		y := randDense(rng, sh.k, sh.n)
		if transposeB {
			y = randDense(rng, sh.n, sh.k)
		}
		for _, par := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"par", 0}} {
			b.Run(sh.name+"/"+par.name, func(b *testing.B) {
				prev := mat.SetParallelism(par.workers)
				defer mat.SetParallelism(prev)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mul(x, y)
				}
			})
		}
	}
}

// BenchmarkMatMulShapes: x·y at CALLOC shapes, sequential vs parallel.
func BenchmarkMatMulShapes(b *testing.B) { benchProducts(b, mat.Mul, false) }

// BenchmarkMatMulTShapes: x·yᵀ (attention scores), sequential vs parallel.
func BenchmarkMatMulTShapes(b *testing.B) { benchProducts(b, mat.MulT, true) }

// BenchmarkMatTMulShapes: xᵀ·y (weight gradients), sequential vs parallel.
// TMul contracts over rows, so the operands are built k×m · k×n directly.
func BenchmarkMatTMulShapes(b *testing.B) {
	for _, sh := range matShapes {
		rng := rand.New(rand.NewSource(2))
		x := randDense(rng, sh.k, sh.m)
		y := randDense(rng, sh.k, sh.n)
		for _, par := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"par", 0}} {
			b.Run(sh.name+"/"+par.name, func(b *testing.B) {
				prev := mat.SetParallelism(par.workers)
				defer mat.SetParallelism(prev)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mat.TMul(x, y)
				}
			})
		}
	}
}

// BenchmarkPredictBatch measures batched localization throughput — the
// serving-path figure — sequentially and with the row-sharded concurrent
// predictor.
func BenchmarkPredictBatch(b *testing.B) {
	m, ds := trainedBenchModel(b)
	var samples []fingerprint.Sample
	for _, dev := range []string{"OP3", "S7", "MOTO"} {
		samples = append(samples, ds.Test[dev]...)
	}
	x := fingerprint.X(samples)
	for _, par := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(par.name, func(b *testing.B) {
			prev := mat.SetParallelism(par.workers)
			defer mat.SetParallelism(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.PredictBatch(x)
			}
			b.ReportMetric(float64(x.Rows)*float64(b.N)/b.Elapsed().Seconds(), "fingerprints/s")
		})
	}
}

func seriesMean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// --- Serving-path benchmarks (PR 2): steady-state allocation behaviour and
// micro-batched concurrent throughput at CALLOC paper shapes. ---

// paperShapeModel builds an untrained model at the paper's dimensions (165
// APs, 61 RPs, d_k=74) with a synthetic attention memory — serving cost
// depends only on shapes, not on trained weights, so benches skip training.
func paperShapeModel(b *testing.B, memory int) *core.Model {
	return paperShapeModelPrec(b, memory, mat.PrecFloat64)
}

// paperShapeModelPrec is paperShapeModel with a serving precision — the
// packed weight and memory snapshots quantize once, activations stay float64.
func paperShapeModelPrec(b *testing.B, memory int, prec mat.Precision) *core.Model {
	b.Helper()
	cfg := core.PaperConfig()
	cfg.Precision = prec
	m, err := core.NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	db := make([]fingerprint.Sample, memory)
	for i := range db {
		rss := make([]float64, cfg.NumAPs)
		for j := range rss {
			rss[j] = rng.Float64()
		}
		db[i] = fingerprint.Sample{RSS: rss, RP: i % cfg.NumRPs}
	}
	if err := m.SetMemory(db); err != nil {
		b.Fatal(err)
	}
	return m
}

// randQueries builds n random single-fingerprint queries at paper width.
func randQueries(n, features int) [][]float64 {
	rng := rand.New(rand.NewSource(42))
	qs := make([][]float64, n)
	for i := range qs {
		qs[i] = make([]float64, features)
		for j := range qs[i] {
			qs[i][j] = rng.Float64()
		}
	}
	return qs
}

// servePrecisions are the packed-weight serving precisions the steady-state
// benches sweep; float64 is the baseline the ≥1.5× float32 single-query
// acceptance criterion is measured against.
var servePrecisions = []mat.Precision{mat.PrecFloat64, mat.PrecFloat32, mat.PrecInt8}

// BenchmarkSteadyStateSingleQuery is the tentpole acceptance bench: the
// single-query Predictor path at paper shapes must report 0 allocs/op once
// the workspace and packed weight views are warm — at every serving
// precision — and the float32 variant must beat float64 by ≥1.5×
// (min-of-N interleaved via scripts/benchmin.sh).
func BenchmarkSteadyStateSingleQuery(b *testing.B) {
	for _, prec := range servePrecisions {
		b.Run(prec.String(), func(b *testing.B) {
			m := paperShapeModelPrec(b, 512, prec)
			q := randQueries(1, core.PaperConfig().NumAPs)
			x := mat.FromSlice(1, len(q[0]), q[0])
			p := m.Predictor()
			dst := make([]int, 1)
			p.PredictInto(dst, x) // warm workspace, packed views, quant scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.PredictInto(dst, x)
			}
		})
	}
}

// BenchmarkSteadyStateBatch measures the workspace batch path (one handle,
// reused buffers) at a serving-window batch size, at every serving precision.
func BenchmarkSteadyStateBatch(b *testing.B) {
	for _, prec := range servePrecisions {
		b.Run(prec.String(), func(b *testing.B) {
			m := paperShapeModelPrec(b, 512, prec)
			features := core.PaperConfig().NumAPs
			qs := randQueries(8, features)
			x := mat.New(8, features)
			for i, q := range qs {
				copy(x.Row(i), q)
			}
			p := m.Predictor()
			dst := make([]int, 8)
			p.PredictInto(dst, x)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.PredictInto(dst, x)
			}
			b.ReportMetric(8*float64(b.N)/b.Elapsed().Seconds(), "fingerprints/s")
		})
	}
}

// serveClients drives exactly `clients` concurrent goroutines through fn
// until b.N requests complete, independent of GOMAXPROCS.
func serveClients(b *testing.B, clients int, fn func(client, i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				fn(c, i)
			}
		}(c)
	}
	wg.Wait()
}

// BenchmarkServeQPS is the coalescing acceptance bench: 8 concurrent clients
// issuing single-fingerprint queries, served naively (one Model.Predict per
// request) versus through the micro-batching engine. The engine amortises
// the weight/memory streaming of the forward pass across the whole window,
// so coalesced QPS must beat naive per-request QPS.
func BenchmarkServeQPS(b *testing.B) {
	const clients = 8
	m := paperShapeModel(b, 1024)
	features := core.PaperConfig().NumAPs
	qs := randQueries(64, features)
	rows := make([]*mat.Matrix, len(qs))
	for i, q := range qs {
		rows[i] = mat.FromSlice(1, features, q)
	}

	b.Run("naive_8clients", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		serveClients(b, clients, func(_, i int) {
			m.Predict(rows[i%len(rows)])
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})

	b.Run("coalesced_8clients", func(b *testing.B) {
		reg := localizer.NewRegistry()
		key := localizer.Key{Building: 1, Floor: 0, Backend: "calloc"}
		if _, err := reg.Register(key, localizer.FromCore("CALLOC", m)); err != nil {
			b.Fatal(err)
		}
		engine, err := serve.New(reg,
			serve.Options{MaxBatch: clients, MaxWait: 200 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		defer engine.Close()
		b.ReportAllocs()
		b.ResetTimer()
		serveClients(b, clients, func(_, i int) {
			if _, err := engine.Localize(nil, key, qs[i%len(qs)]); err != nil {
				b.Error(err)
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		b.ReportMetric(engine.Stats().AvgBatch, "avg_batch")
	})
}

// BenchmarkRegistryDispatch is the tentpole acceptance bench: dispatching a
// paper-shape single query through the localizer registry (atomic snapshot
// load + adapter + pooled predictor) must add <5% latency over holding a
// core.Predictor directly.
func BenchmarkRegistryDispatch(b *testing.B) {
	m := paperShapeModel(b, 512)
	q := randQueries(1, core.PaperConfig().NumAPs)
	x := mat.FromSlice(1, len(q[0]), q[0])
	dst := make([]int, 1)

	b.Run("direct_predictor", func(b *testing.B) {
		p := m.Predictor()
		p.PredictInto(dst, x) // warm workspace and packed views
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.PredictInto(dst, x)
		}
	})

	b.Run("registry", func(b *testing.B) {
		reg := localizer.NewRegistry()
		key := localizer.Key{Building: 1, Floor: 0, Backend: "calloc"}
		if _, err := reg.Register(key, localizer.FromCore("CALLOC", m)); err != nil {
			b.Fatal(err)
		}
		if snap, ok := reg.Get(key); ok {
			snap.Localizer.PredictInto(dst, x) // warm
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap, ok := reg.Get(key)
			if !ok {
				b.Fatal("key vanished")
			}
			snap.Localizer.PredictInto(dst, x)
		}
	})
}

// BenchmarkRoutingDispatch measures the hierarchical serving path at paper
// shapes: floor classifier stage + position stage through the engine,
// against the direct single-stage Localize — the routing-dispatch overhead
// the CI bench-smoke tracks.
func BenchmarkRoutingDispatch(b *testing.B) {
	const building = 1
	features := core.PaperConfig().NumAPs
	m := paperShapeModel(b, 512)
	reg := localizer.NewRegistry()
	// Floor classifier: trivial two-floor split on feature 0 — the bench
	// isolates routing overhead, not classifier cost.
	fc := localizer.Wrap("floor", features, 2, nil, func(dst []int, x *mat.Matrix) []int {
		if dst == nil {
			dst = make([]int, x.Rows)
		}
		for i := 0; i < x.Rows; i++ {
			dst[i] = 0
			if x.Row(i)[0] > 0.5 {
				dst[i] = 1
			}
		}
		return dst
	})
	if _, err := reg.Register(localizer.FloorKey(building), fc); err != nil {
		b.Fatal(err)
	}
	for floor := 0; floor < 2; floor++ {
		key := localizer.Key{Building: building, Floor: floor, Backend: "calloc"}
		if _, err := reg.Register(key, localizer.FromCore("CALLOC", m)); err != nil {
			b.Fatal(err)
		}
	}
	engine, err := serve.New(reg, serve.Options{MaxBatch: 8, MaxWait: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer engine.Close()
	qs := randQueries(64, features)

	b.Run("direct", func(b *testing.B) {
		key := localizer.Key{Building: building, Floor: 0, Backend: "calloc"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Localize(nil, key, qs[i%len(qs)]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})

	b.Run("routed", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Route(nil, building, "calloc", qs[i%len(qs)]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})
}

// BenchmarkMatMulPackedShapes compares the plain row-major product against
// the packed-operand and fused-epilogue kernels at CALLOC shapes, at every
// serving precision. The float32 and int8 variants stream 2×/8× fewer weight
// bytes per product — the bandwidth cut behind the single-query speedup.
func BenchmarkMatMulPackedShapes(b *testing.B) {
	for _, sh := range matShapes {
		rng := rand.New(rand.NewSource(2))
		x := randDense(rng, sh.m, sh.k)
		y := randDense(rng, sh.k, sh.n)
		p := mat.Pack(y)
		pf := mat.PackPrec(y, mat.PrecFloat32)
		pq := mat.PackPrec(y, mat.PrecInt8)
		bias := make([]float64, sh.n)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		dst := mat.New(sh.m, sh.n)
		for _, variant := range []struct {
			name string
			run  func()
		}{
			{"plain", func() { mat.MulInto(dst, x, y) }},
			{"packed", func() { mat.MulPackedInto(dst, x, p) }},
			{"packed_f32", func() { mat.MulPackedInto(dst, x, pf) }},
			{"packed_i8", func() { mat.MulPackedInto(dst, x, pq) }},
			{"packed_bias_relu", func() { mat.MulPackedBiasActInto(dst, x, p, bias, mat.ActReLU) }},
			{"packed_f32_bias_relu", func() { mat.MulPackedBiasActInto(dst, x, pf, bias, mat.ActReLU) }},
			{"packed_i8_bias_relu", func() { mat.MulPackedBiasActInto(dst, x, pq, bias, mat.ActReLU) }},
		} {
			b.Run(sh.name+"/"+variant.name, func(b *testing.B) {
				prev := mat.SetParallelism(1)
				defer mat.SetParallelism(prev)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					variant.run()
				}
			})
		}
	}
}

// trainBenchDataset builds the building-scale dataset (Building 3 of
// Table II: 78 APs, 88 RPs) the training benches run on — training cost is
// dominated by the B×M attention and the FGSM crafting pass, both of which
// only show their real shape at building scale.
var (
	trainDSOnce sync.Once
	trainDS     *fingerprint.Dataset
)

func trainBenchDataset(b *testing.B) *fingerprint.Dataset {
	b.Helper()
	trainDSOnce.Do(func() {
		spec, err := floorplan.SpecByID(3)
		if err != nil {
			b.Fatal(err)
		}
		bld := floorplan.Build(spec, 1)
		ds, err := fingerprint.Collect(bld, device.Registry(), fingerprint.DefaultCollectConfig())
		if err != nil {
			b.Fatal(err)
		}
		trainDS = ds
	})
	return trainDS
}

// BenchmarkTrainLesson measures one adversarial curriculum lesson (3 epochs
// at ø=50, ε=0.1: craft FGSM lesson data, sharded forward/backward, Adam
// step) at building scale, sequential vs maximum fan-out. The sharded
// trainer's fixed partition + ordered reduction make the two bit-identical;
// see TestTrainDeterministicAcrossParallelism and BENCH_pr4.json for
// measured numbers and the single-vCPU caveat.
func BenchmarkTrainLesson(b *testing.B) {
	ds := trainBenchDataset(b)
	lessons := []curriculum.Lesson{{Number: 1, PhiPercent: 50, Epsilon: 0.1, OriginalFraction: 0.35}}
	run := func(b *testing.B, workers int) {
		prev := mat.SetParallelism(workers)
		defer mat.SetParallelism(prev)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := core.NewModel(core.DefaultConfig(ds.NumAPs, ds.NumRPs))
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.TrainConfig{
				Lessons:       lessons,
				UseCurriculum: true, EpochsPerLesson: 3,
				LearningRate: 0.03, Seed: 1,
			}
			if _, err := m.Train(ds.Train, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("parallel_8", func(b *testing.B) { run(b, 8) })
}

// BenchmarkCraftFGSM measures per-epoch FGSM lesson-data crafting at
// building scale: the allocating Craft path against CraftInto with a reused
// destination (plus the scratch-pooled input gradient), the combination the
// trainer's per-epoch loop uses.
func BenchmarkCraftFGSM(b *testing.B) {
	ds := trainBenchDataset(b)
	m, err := core.NewModel(core.DefaultConfig(ds.NumAPs, ds.NumRPs))
	if err != nil {
		b.Fatal(err)
	}
	if err := m.SetMemory(ds.Train); err != nil {
		b.Fatal(err)
	}
	x := fingerprint.X(ds.Train)
	labels := fingerprint.Labels(ds.Train)
	cfg := attack.Config{Epsilon: 0.1, PhiPercent: 50, Seed: 1}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			attack.Craft(attack.FGSM, m, x, labels, cfg)
		}
	})
	b.Run("into", func(b *testing.B) {
		dst := mat.New(x.Rows, x.Cols)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			attack.CraftInto(dst, attack.FGSM, m, x, labels, cfg)
		}
	})
}

// BenchmarkShadowDispatch measures what the A/B shadow lane costs the
// routed serving path at paper shapes: ab_off is the plain hierarchical
// Route (the PR 4 RoutingDispatch/routed baseline), ab_on_no_candidate adds
// the per-request candidate lookup with nothing staged (the steady-state
// cost when no deployment is in flight), and ab_on_shadow_8 additionally
// duplicates every 8th request through the staged candidate's shadow lane.
// The acceptance bound is on the non-shadowed path: ab_off and
// ab_on_no_candidate must stay within 5% of the PR 4 baseline.
func BenchmarkShadowDispatch(b *testing.B) {
	const building = 1
	features := core.PaperConfig().NumAPs
	m := paperShapeModel(b, 512)
	qs := randQueries(64, features)

	build := func(b *testing.B, abFraction int, stage bool) *serve.Engine {
		b.Helper()
		reg := localizer.NewRegistry()
		fc := localizer.Wrap("floor", features, 2, nil, func(dst []int, x *mat.Matrix) []int {
			if dst == nil {
				dst = make([]int, x.Rows)
			}
			for i := 0; i < x.Rows; i++ {
				dst[i] = 0
				if x.Row(i)[0] > 0.5 {
					dst[i] = 1
				}
			}
			return dst
		})
		if _, err := reg.Register(localizer.FloorKey(building), fc); err != nil {
			b.Fatal(err)
		}
		for floor := 0; floor < 2; floor++ {
			key := localizer.Key{Building: building, Floor: floor, Backend: "calloc"}
			if _, err := reg.Register(key, localizer.FromCore("CALLOC", m)); err != nil {
				b.Fatal(err)
			}
			if stage {
				// The candidate shares the model: shadow rows cost one more
				// batched predict, which is exactly the overhead to measure.
				if _, err := reg.Stage(key, localizer.FromCore("CAND", m)); err != nil {
					b.Fatal(err)
				}
			}
		}
		engine, err := serve.New(reg, serve.Options{MaxBatch: 8, MaxWait: -1, ABFraction: abFraction})
		if err != nil {
			b.Fatal(err)
		}
		return engine
	}

	run := func(name string, abFraction int, stage bool) {
		b.Run(name, func(b *testing.B) {
			engine := build(b, abFraction, stage)
			defer engine.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Route(nil, building, "calloc", qs[i%len(qs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
			b.StopTimer()
			if stage {
				st := engine.Stats()
				b.ReportMetric(float64(st.ShadowRows), "shadow_rows")
			}
		})
	}

	run("ab_off", 0, false)
	run("ab_on_no_candidate", 8, false)
	run("ab_on_shadow_8", 8, true)
}

// BenchmarkRouterHop measures the fleet router's per-hop cost: one
// /v1/localize POST against a node's HTTP surface directly vs the same
// request through a cluster.Router front door backed by that node. Both
// paths use one keep-alive client and an explicit floor (a direct registry
// lookup on the node), so the delta is purely the router hop — body read,
// owner resolution, and the pooled proxy round trip.
func BenchmarkRouterHop(b *testing.B) {
	ds := ablationDataset(b)
	m, err := core.NewModel(core.DefaultConfig(ds.NumAPs, ds.NumRPs))
	if err != nil {
		b.Fatal(err)
	}
	blob, err := m.MarshalWeights()
	if err != nil {
		b.Fatal(err)
	}
	n, err := node.New([]*fingerprint.Dataset{ds}, node.Config{
		Backends:       []string{"calloc"},
		WeightBlobs:    [][]byte{blob},
		Engine:         serve.Options{MaxBatch: 8, MaxWait: -1},
		DisableTrainer: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	nodeSrv := httptest.NewServer(n.Handler())
	defer nodeSrv.Close()

	sm, err := cluster.NewStaticMap(
		map[string]string{"n": nodeSrv.URL},
		map[cluster.ShardKey]string{{Building: ds.BuildingID, Floor: 0}: "n"},
	)
	if err != nil {
		b.Fatal(err)
	}
	router, err := cluster.NewRouter(sm, cluster.RouterOptions{
		Building: ds.BuildingID, ProbeInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer router.Close()
	frontSrv := httptest.NewServer(router.Handler())
	defer frontSrv.Close()

	q := ds.Test["OP3"][0]
	body, err := json.Marshal(map[string]any{"rss": q.RSS, "floor": 0})
	if err != nil {
		b.Fatal(err)
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	post := func(b *testing.B, url string) {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}

	run := func(name, url string) {
		b.Run(name, func(b *testing.B) {
			post(b, url) // warm the connection pool and model workspace
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post(b, url)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
	run("direct", nodeSrv.URL+"/v1/localize")
	run("proxied", frontSrv.URL+"/v1/localize")
}

// wireDataset builds the small building the wire benches serve: few enough
// APs and reference points that any backend's per-row predict is noise next
// to the HTTP exchange it rides in.
var (
	wireOnce sync.Once
	wireDS   *fingerprint.Dataset
)

func wireDataset(b *testing.B) *fingerprint.Dataset {
	b.Helper()
	wireOnce.Do(func() {
		spec := floorplan.Spec{
			ID: 91, Name: "Wire", VisibleAPs: 12, PathLengthM: 4,
			Characteristics: "bench", Model: floorplan.Registry()[2].Model,
		}
		bld := floorplan.Build(spec, 1)
		ds, err := fingerprint.Collect(bld, device.Registry(), fingerprint.DefaultCollectConfig())
		if err != nil {
			b.Fatal(err)
		}
		wireDS = ds
	})
	return wireDS
}

// rawConn is a keep-alive HTTP/1.1 connection with hand-rolled framing: a
// prebuilt request byte slice goes out, the status line and Content-Length
// come back, the body lands in a reused buffer. http.Client costs ~50
// allocations per request on its own, which would drown the server wire
// numbers BenchmarkWirePath exists to measure; this client costs ~0.
type rawConn struct {
	c   net.Conn
	br  *bufio.Reader
	buf []byte
}

func dialWire(addr string) (*rawConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &rawConn{c: c, br: bufio.NewReaderSize(c, 4096), buf: make([]byte, 0, 4096)}, nil
}

// roundTrip writes one prebuilt request and parses the response in place.
// The returned body aliases the connection's reuse buffer.
func (rc *rawConn) roundTrip(req []byte) (status int, body []byte, err error) {
	if _, err := rc.c.Write(req); err != nil {
		return 0, nil, err
	}
	line, err := rc.br.ReadSlice('\n')
	if err != nil {
		return 0, nil, err
	}
	if len(line) < 12 {
		return 0, nil, fmt.Errorf("short status line %q", line)
	}
	status = int(line[9]-'0')*100 + int(line[10]-'0')*10 + int(line[11]-'0')
	clen := -1
	for {
		line, err = rc.br.ReadSlice('\n')
		if err != nil {
			return 0, nil, err
		}
		if len(line) <= 2 { // blank line: end of headers
			break
		}
		const cl = "Content-Length:"
		if len(line) > len(cl) && string(line[:len(cl)]) == cl {
			n := 0
			for _, ch := range line[len(cl):] {
				if ch >= '0' && ch <= '9' {
					n = n*10 + int(ch-'0')
				}
			}
			clen = n
		}
	}
	if clen < 0 {
		return 0, nil, fmt.Errorf("response without Content-Length")
	}
	if cap(rc.buf) < clen {
		rc.buf = make([]byte, clen)
	}
	body = rc.buf[:clen]
	if _, err := io.ReadFull(rc.br, body); err != nil {
		return 0, nil, err
	}
	return status, body, nil
}

// rawRequest prebuilds the full HTTP/1.1 request bytes for one POST.
func rawRequest(path string, body []byte) []byte {
	return []byte(fmt.Sprintf(
		"POST %s HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		path, len(body), body))
}

// BenchmarkWirePath measures the serving wire itself — pooled handler decode
// → engine round trip → append-style emit — with the raw keep-alive client
// above, so allocs/op is the SERVER cost (plus a handful for net/http's own
// per-request framing), not the client's. Arms:
//
//	direct_single       one fingerprint per request against the node
//	direct_batch64      64 fingerprints per /v1/localize/batch request
//	proxied_single      the same single request through the router hop
//	proxied_par32       proxied singles at concurrency 32, no coalescing
//	proxied_coalesced32 concurrency 32 with router-side coalescing into
//	                    upstream batches (CoalesceBatch 32)
func BenchmarkWirePath(b *testing.B) {
	ds := wireDataset(b)
	// The bayes backend predicts through the same pooled adapter scratch as
	// the packed calloc path (zero allocations per call) but costs under a
	// microsecond per row on the small wire building, so the arms measure
	// the WIRE — decode, engine round trip, emit, proxy hop — rather than
	// model compute, which batching cannot amortize.
	n, err := node.New([]*fingerprint.Dataset{ds}, node.Config{
		Backends:       []string{"bayes"},
		Engine:         serve.Options{MaxBatch: 64, MaxWait: -1},
		DisableTrainer: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	nodeSrv := httptest.NewServer(n.Handler())
	defer nodeSrv.Close()
	nodeAddr := nodeSrv.Listener.Addr().String()

	mkRouter := func(coalesce int, wait time.Duration) (*cluster.Router, string) {
		sm, err := cluster.NewStaticMap(
			map[string]string{"n": nodeSrv.URL},
			map[cluster.ShardKey]string{{Building: ds.BuildingID, Floor: 0}: "n"},
		)
		if err != nil {
			b.Fatal(err)
		}
		router, err := cluster.NewRouter(sm, cluster.RouterOptions{
			Building: ds.BuildingID, ProbeInterval: -1,
			CoalesceBatch: coalesce, CoalesceWait: wait,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(router.Handler())
		b.Cleanup(srv.Close)
		b.Cleanup(router.Close)
		return router, srv.Listener.Addr().String()
	}
	_, plainAddr := mkRouter(0, 0)
	_, coAddr := mkRouter(32, 2*time.Millisecond)

	qs := ds.Test["OP3"]
	single, err := json.Marshal(map[string]any{"rss": qs[0].RSS, "floor": 0})
	if err != nil {
		b.Fatal(err)
	}
	singleReq := rawRequest("/v1/localize", single)
	var batchBody bytes.Buffer
	batchBody.WriteString(`{"queries":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			batchBody.WriteByte(',')
		}
		row, err := json.Marshal(map[string]any{"rss": qs[i%len(qs)].RSS, "floor": 0})
		if err != nil {
			b.Fatal(err)
		}
		batchBody.Write(row)
	}
	batchBody.WriteString(`]}`)
	batchReq := rawRequest("/v1/localize/batch", batchBody.Bytes())

	runSeq := func(name, addr string, req []byte, rows int) {
		b.Run(name, func(b *testing.B) {
			rc, err := dialWire(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer rc.c.Close()
			if status, _, err := rc.roundTrip(req); err != nil || status != http.StatusOK {
				b.Fatalf("warmup: status %d, err %v", status, err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				status, _, err := rc.roundTrip(req)
				if err != nil || status != http.StatusOK {
					b.Fatalf("status %d, err %v", status, err)
				}
			}
			b.ReportMetric(float64(b.N*rows)/b.Elapsed().Seconds(), "rows/s")
			if rows > 1 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
			}
		})
	}
	runPar := func(name, addr string, conc int) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetParallelism(conc) // conc goroutines per GOMAXPROCS
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rc, err := dialWire(addr)
				if err != nil {
					b.Error(err)
					return
				}
				defer rc.c.Close()
				for pb.Next() {
					status, _, err := rc.roundTrip(singleReq)
					if err != nil || status != http.StatusOK {
						b.Errorf("status %d, err %v", status, err)
						return
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		})
	}

	runSeq("direct_single", nodeAddr, singleReq, 1)
	runSeq("direct_batch64", nodeAddr, batchReq, 64)
	runSeq("proxied_single", plainAddr, singleReq, 1)
	runPar("proxied_par32", plainAddr, 32)
	runPar("proxied_coalesced32", coAddr, 32)
}
